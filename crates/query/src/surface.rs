//! The multi-surface front-end: one semantics, three spellings.
//!
//! Every surface parses to the same [`Query`] AST and lowers through the
//! single shared path — surface AST → normalized AST →
//! [`crate::expand::ExpandedQuery`] → physical plan. [`QueryInput`]
//! bundles a query string with an optional surface selection (`None`
//! auto-detects) and is what the `Database` entry points accept; its
//! [`QueryInput::parse`] normalizes the AST, so the canonical rendering —
//! and with it the plan-cache key and cost-model fingerprint — is
//! surface-independent.

use crate::ast::Query;
use crate::json_ir::parse_json_query;
use crate::parser::{parse_query, ParseError};
use crate::xpath::parse_xpath_query;
use std::fmt;

/// A query surface: which concrete syntax a query string is written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Surface {
    /// The classic approXQL syntax: `cd[title["piano"] and composer]`.
    Classic,
    /// The versioned JSON query-IR: `{"v":1,"query":{…}}` (see
    /// [`crate::json_ir`]).
    Json,
    /// The XPath-lite navigational syntax: `/cd//title["piano"]` (see
    /// [`crate::xpath`]).
    Xpath,
}

impl Surface {
    /// All surfaces, in canonical order.
    pub const ALL: [Surface; 3] = [Surface::Classic, Surface::Json, Surface::Xpath];

    /// The surface's CLI/dataset name.
    pub fn name(self) -> &'static str {
        match self {
            Surface::Classic => "classic",
            Surface::Json => "json",
            Surface::Xpath => "xpath",
        }
    }

    /// Parses a surface name as used by `--surface` and dataset `surface`
    /// fields.
    pub fn from_name(name: &str) -> Option<Surface> {
        match name {
            "classic" => Some(Surface::Classic),
            "json" => Some(Surface::Json),
            "xpath" => Some(Surface::Xpath),
            _ => None,
        }
    }

    /// Guesses the surface from the query text. Unambiguous: a classic
    /// query starts with a name selector, which can begin with neither
    /// `{` nor `/`; a JSON-IR document is an object; an XPath-lite query
    /// is an absolute path.
    pub fn detect(text: &str) -> Surface {
        let trimmed = text.trim_start();
        if trimmed.starts_with('{') {
            Surface::Json
        } else if trimmed.starts_with('/') {
            Surface::Xpath
        } else {
            Surface::Classic
        }
    }

    /// Parses `text` in this surface. The result is **not** normalized;
    /// use [`QueryInput::parse`] for the compilation path.
    pub fn parse(self, text: &str) -> Result<Query, ParseError> {
        match self {
            Surface::Classic => parse_query(text),
            Surface::Json => parse_json_query(text),
            Surface::Xpath => parse_xpath_query(text),
        }
    }

    /// Renders `query` in this surface's canonical form. Every rendering
    /// reparses (in its own surface) to the same normalized query.
    pub fn render(self, query: &Query) -> String {
        match self {
            Surface::Classic => query.to_string(),
            Surface::Json => query.to_json_ir(),
            Surface::Xpath => query.to_xpath(),
        }
    }
}

impl fmt::Display for Surface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A query string plus an optional surface selection — the input type of
/// the `Database` query entry points. `From<&str>` keeps plain strings
/// working everywhere (with auto-detection).
#[derive(Debug, Clone, Copy)]
pub struct QueryInput<'a> {
    /// The query text.
    pub text: &'a str,
    /// The surface to parse with; `None` auto-detects via
    /// [`Surface::detect`].
    pub surface: Option<Surface>,
}

impl<'a> QueryInput<'a> {
    /// An auto-detected input.
    pub fn new(text: &'a str) -> Self {
        QueryInput {
            text,
            surface: None,
        }
    }

    /// An input pinned to a specific surface.
    pub fn with_surface(text: &'a str, surface: Surface) -> Self {
        QueryInput {
            text,
            surface: Some(surface),
        }
    }

    /// The effective surface (explicit selection or auto-detected).
    pub fn surface(&self) -> Surface {
        self.surface.unwrap_or_else(|| Surface::detect(self.text))
    }

    /// Parses and normalizes: the single entry onto the shared lowering
    /// path. Equivalent queries from any surface return equal `Query`
    /// values here, and therefore equal canonical renderings, plan-cache
    /// keys, and plans.
    pub fn parse(&self) -> Result<Query, ParseError> {
        self.surface().parse(self.text).map(Query::normalize)
    }
}

impl<'a> From<&'a str> for QueryInput<'a> {
    fn from(text: &'a str) -> Self {
        QueryInput::new(text)
    }
}

impl<'a> From<&'a String> for QueryInput<'a> {
    fn from(text: &'a String) -> Self {
        QueryInput::new(text)
    }
}

impl<'a, 'b: 'a> From<&'a &'b str> for QueryInput<'a> {
    fn from(text: &'a &'b str) -> Self {
        QueryInput::new(text)
    }
}

impl<'a> From<(&'a str, Surface)> for QueryInput<'a> {
    fn from((text, surface): (&'a str, Surface)) -> Self {
        QueryInput::with_surface(text, surface)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_unambiguous() {
        assert_eq!(Surface::detect("cd[title]"), Surface::Classic);
        assert_eq!(Surface::detect("  _x"), Surface::Classic);
        assert_eq!(
            Surface::detect(r#"{"v":1,"query":{"name":"cd"}}"#),
            Surface::Json
        );
        assert_eq!(Surface::detect("  {"), Surface::Json);
        assert_eq!(Surface::detect("/cd//title"), Surface::Xpath);
    }

    #[test]
    fn names_round_trip() {
        for s in Surface::ALL {
            assert_eq!(Surface::from_name(s.name()), Some(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(Surface::from_name("sql"), None);
    }

    #[test]
    fn all_surfaces_parse_to_the_same_normalized_query() {
        let classic = "cd[title[\"piano\" and \"concerto\"] and composer]";
        let json = r#"{"v":1,"query":{"name":"cd","child":{"and":[
            {"name":"title","child":{"text":"piano concerto"}},
            {"name":"composer"}]}}}"#;
        let xpath = r#"/cd[title["piano" and "concerto"]]//composer"#;
        let want = QueryInput::new(classic).parse().unwrap();
        for (text, surface) in [(json, Surface::Json), (xpath, Surface::Xpath)] {
            // Auto-detection and explicit selection agree.
            assert_eq!(QueryInput::new(text).surface(), surface);
            assert_eq!(QueryInput::new(text).parse().unwrap(), want, "{surface}");
            assert_eq!(
                QueryInput::with_surface(text, surface).parse().unwrap(),
                want
            );
        }
    }

    #[test]
    fn renderings_reparse_to_the_same_query() {
        let q = QueryInput::new(r#"cd[title["piano" or "forte"] and x]"#)
            .parse()
            .unwrap();
        for s in Surface::ALL {
            let rendered = s.render(&q);
            assert_eq!(Surface::detect(&rendered), s, "{rendered}");
            assert_eq!(
                QueryInput::new(rendered.as_str()).parse().unwrap(),
                q,
                "{rendered}"
            );
        }
    }
}
