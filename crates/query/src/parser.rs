//! Recursive-descent parser for approXQL.
//!
//! Grammar (with `and` binding tighter than `or`):
//!
//! ```text
//! query   := step
//! step    := NAME [ '[' expr ']' ]
//! expr    := andexpr ( 'or' andexpr )*
//! andexpr := primary ( 'and' primary )*
//! primary := '(' expr ')' | step | STRING
//! ```
//!
//! String literals are normalized with the same word splitting as document
//! text (Section 4); a multi-word literal like `"piano concerto"` becomes
//! `"piano" and "concerto"`.

use crate::ast::{Query, QueryNode};
use crate::lexer::{tokenize, Spanned, Token};
use approxql_tree::text::split_words;
use std::fmt;

/// A syntax error with the position where it was detected and a rendered
/// caret snippet pointing into the offending source line.
///
/// All three query surfaces (classic, JSON query-IR, XPath-lite) report
/// failures through this type, so every front-end error carries a
/// line/column and a `^` marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the query string.
    pub offset: usize,
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column (in characters) of the error within its line.
    pub col: usize,
    /// Description of the problem.
    pub message: String,
    /// The source line containing the error (caret snippet body).
    pub snippet: String,
}

impl ParseError {
    /// Builds an error pointing at `offset` (a byte position) in `input`,
    /// deriving the line/column and the snippet line.
    pub fn at_offset(input: &str, offset: usize, message: impl Into<String>) -> ParseError {
        let offset = offset.min(input.len());
        let line_start = input[..offset].rfind('\n').map_or(0, |i| i + 1);
        let line_end = input[offset..]
            .find('\n')
            .map_or(input.len(), |i| offset + i);
        ParseError {
            offset,
            line: input[..offset].matches('\n').count() + 1,
            col: input[line_start..offset].chars().count() + 1,
            message: message.into(),
            snippet: input[line_start..line_end].to_owned(),
        }
    }

    /// Builds an error from a 1-based line/column pair (as reported by the
    /// JSON reader), deriving the byte offset and the snippet line.
    pub fn at_line_col(
        input: &str,
        line: usize,
        col: usize,
        message: impl Into<String>,
    ) -> ParseError {
        let line_start = input
            .split_inclusive('\n')
            .take(line.saturating_sub(1))
            .map(str::len)
            .sum::<usize>();
        let within: usize = input[line_start..]
            .chars()
            .take(col.saturating_sub(1))
            .map(char::len_utf8)
            .sum();
        ParseError::at_offset(input, line_start + within, message)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query syntax error at line {}, column {}: {}",
            self.line, self.col, self.message
        )?;
        write!(
            f,
            "\n  {}\n  {:>caret$}",
            self.snippet,
            "^",
            caret = self.col
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or(self.input.len())
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::at_offset(self.input, self.offset(), message)
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected {want}, found {t}"))),
            None => Err(self.err(format!("expected {want}, found end of query"))),
        }
    }

    /// `step := NAME [ '[' expr ']' ]`
    fn step(&mut self) -> Result<QueryNode, ParseError> {
        let label = match self.bump() {
            Some(Token::Name(n)) => n,
            Some(t) => return Err(self.err(format!("expected a name selector, found {t}"))),
            None => return Err(self.err("expected a name selector, found end of query")),
        };
        let child = if self.peek() == Some(&Token::LBracket) {
            self.pos += 1;
            let e = self.expr()?;
            self.expect(&Token::RBracket)?;
            Some(Box::new(e))
        } else {
            None
        };
        Ok(QueryNode::Name { label, child })
    }

    /// Converts a string literal into one or more `and`-connected text
    /// selectors.
    fn text_selector(&self, raw: &str) -> Result<QueryNode, ParseError> {
        let words = split_words(raw);
        let mut iter = words.into_iter();
        let first = iter
            .next()
            .ok_or_else(|| self.err(format!("text selector \"{raw}\" contains no word")))?;
        let mut node = QueryNode::Text { word: first };
        for w in iter {
            node = QueryNode::And(Box::new(node), Box::new(QueryNode::Text { word: w }));
        }
        Ok(node)
    }

    /// `primary := '(' expr ')' | step | STRING`
    fn primary(&mut self) -> Result<QueryNode, ParseError> {
        match self.peek() {
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Str(_)) => {
                let raw = match self.bump() {
                    Some(Token::Str(s)) => s,
                    _ => unreachable!(),
                };
                // Report errors at the literal's own position.
                self.pos -= 1;
                let node = self.text_selector(&raw);
                self.pos += 1;
                node
            }
            Some(Token::Name(_)) => self.step(),
            Some(t) => {
                let t = t.clone();
                Err(self.err(format!("expected a selector, found {t}")))
            }
            None => Err(self.err("expected a selector, found end of query")),
        }
    }

    /// `andexpr := primary ( 'and' primary )*`
    fn andexpr(&mut self) -> Result<QueryNode, ParseError> {
        let mut node = self.primary()?;
        while self.peek() == Some(&Token::And) {
            self.pos += 1;
            let rhs = self.primary()?;
            node = QueryNode::And(Box::new(node), Box::new(rhs));
        }
        Ok(node)
    }

    /// `expr := andexpr ( 'or' andexpr )*`
    fn expr(&mut self) -> Result<QueryNode, ParseError> {
        let mut node = self.andexpr()?;
        while self.peek() == Some(&Token::Or) {
            self.pos += 1;
            let rhs = self.andexpr()?;
            node = QueryNode::Or(Box::new(node), Box::new(rhs));
        }
        Ok(node)
    }
}

/// Parses an approXQL query string.
///
/// ```
/// use approxql_query::parse_query;
/// let q = parse_query(r#"cd[title["piano" and "concerto"]]"#).unwrap();
/// assert_eq!(q.root_label(), "cd");
/// assert_eq!(q.selector_count(), 4);
/// ```
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input).map_err(|e| ParseError::at_offset(input, e.offset, e.message))?;
    let mut p = Parser {
        input,
        tokens,
        pos: 0,
    };
    let root = p.step()?;
    if p.peek().is_some() {
        return Err(p.err("unexpected trailing input after the query"));
    }
    Ok(Query { root })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query() {
        let q = parse_query(r#"cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#)
            .unwrap();
        assert_eq!(q.root_label(), "cd");
        assert_eq!(q.selector_count(), 6);
        assert_eq!(q.or_count(), 0);
    }

    #[test]
    fn parses_paper_or_query() {
        let q = parse_query(
            r#"cd[title["piano" and ("concerto" or "sonata")] and (composer["rachmaninov"] or performer["ashkenazy"])]"#,
        )
        .unwrap();
        assert_eq!(q.or_count(), 2);
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let q = parse_query(r#"a["x" and "y" or "z"]"#).unwrap();
        match &q.root {
            QueryNode::Name { child: Some(c), .. } => match c.as_ref() {
                QueryNode::Or(l, _) => assert!(matches!(l.as_ref(), QueryNode::And(_, _))),
                other => panic!("expected Or at top, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let q = parse_query(r#"a["x" and ("y" or "z")]"#).unwrap();
        match &q.root {
            QueryNode::Name { child: Some(c), .. } => {
                assert!(matches!(c.as_ref(), QueryNode::And(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_name_is_a_valid_query() {
        let q = parse_query("cd").unwrap();
        assert_eq!(q.selector_count(), 1);
    }

    #[test]
    fn name_leaf_inside_query() {
        // query pattern 3 ends with `… and name]`
        let q = parse_query("cd[title and composer]").unwrap();
        assert_eq!(q.selector_count(), 3);
    }

    #[test]
    fn multiword_literal_splits_into_and() {
        let q = parse_query(r#"cd[title["Piano Concerto No. 2"]]"#).unwrap();
        // piano, concerto, no, 2 -> 4 text selectors
        assert_eq!(q.selector_count(), 2 + 4);
        assert_eq!(
            format!("{q}"),
            r#"cd[title["piano" and "concerto" and "no" and "2"]]"#
        );
    }

    #[test]
    fn display_roundtrips() {
        for src in [
            r#"cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#,
            r#"cd[title["piano" and ("concerto" or "sonata")]]"#,
            r#"a[b or c and d]"#,
            "cd",
        ] {
            let q = parse_query(src).unwrap();
            let rendered = format!("{q}");
            let q2 = parse_query(&rendered).unwrap();
            assert_eq!(q, q2, "roundtrip failed for {src}: rendered {rendered}");
        }
    }

    #[test]
    fn rejects_text_rooted_query() {
        assert!(parse_query(r#""piano""#).is_err());
    }

    #[test]
    fn rejects_empty_query() {
        assert!(parse_query("").is_err());
        assert!(parse_query("   ").is_err());
    }

    #[test]
    fn rejects_unbalanced_brackets() {
        assert!(parse_query("cd[title").is_err());
        assert!(parse_query("cd]").is_err());
        assert!(parse_query("cd[(a]").is_err());
    }

    #[test]
    fn rejects_empty_text_selector() {
        let err = parse_query(r#"cd["--"]"#).unwrap_err();
        assert!(err.message.contains("no word"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse_query("cd dvd").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn rejects_operators_without_operands() {
        assert!(parse_query("cd[and]").is_err());
        assert!(parse_query("cd[a and]").is_err());
        assert!(parse_query("cd[or b]").is_err());
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let err = parse_query("cd[a and ]").unwrap_err();
        assert_eq!(err.offset, 9);
        assert_eq!((err.line, err.col), (1, 10));
    }

    #[test]
    fn errors_render_a_caret_snippet() {
        let err = parse_query("cd[a and ]").unwrap_err();
        let rendered = err.to_string();
        assert!(
            rendered.starts_with("query syntax error at line 1, column 10:"),
            "{rendered}"
        );
        assert!(
            rendered.ends_with("\n  cd[a and ]\n           ^"),
            "{rendered}"
        );
    }

    #[test]
    fn errors_locate_later_lines() {
        let err = parse_query("cd[\n  a and\n]").unwrap_err();
        assert_eq!((err.line, err.col), (3, 1));
        assert_eq!(err.snippet, "]");
        let same = ParseError::at_line_col("cd[\n  a and\n]", 3, 1, "x");
        assert_eq!((same.offset, same.line, same.col), (err.offset, 3, 1));
    }

    #[test]
    fn end_of_input_errors_point_past_the_last_char() {
        let err = parse_query("cd[a").unwrap_err();
        assert_eq!(err.offset, 4);
        assert_eq!(err.col, 5);
        assert!(err.to_string().ends_with("\n  cd[a\n      ^"), "{err}");
    }
}
