//! Mutation crash torture: replay a mixed insert/delete workload through
//! [`DbFile`], crash at *every* backend operation index (in every crash
//! mode), reopen, and require the recovered database to answer a fixed
//! query battery exactly like the per-commit oracle — at 1 and 4 threads,
//! with a clean integrity check and zero panics.
//!
//! The oracle is built by replaying the committed prefix of the same
//! workload through the same incremental maintenance path in memory, so
//! any divergence is a persistence bug, not an algorithmic one (the
//! incremental-vs-batch equivalence is pinned separately in the library
//! tests). `APPROXQL_TORTURE_SCALE` multiplies the workload (CI runs a
//! larger sweep in release mode).

use approxql_core::{Database, DbFile, EvalOptions, SchemaEvalConfig};
use approxql_cost::Cost;
use approxql_storage::{CrashMode, FaultBackend, FaultConfig, SharedMemBackend, Store};
use approxql_tree::NodeId;
use approxql_xml::{parse_document, Document};
use std::collections::HashMap;

/// One workload step. Deletes address the k-th *live* document at
/// execution time, which is deterministic because both sides replay the
/// identical prefix; a delete whose target does not exist is skipped (on
/// both sides) without a commit.
#[derive(Clone)]
enum MutOp {
    Insert(String),
    Delete(usize),
}

fn scale() -> usize {
    std::env::var("APPROXQL_TORTURE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The two seed documents the database is created with.
const SEED_DOCS: &[&str] = &[
    "<cd><title>piano sonata</title></cd>",
    "<cd><title>kinderszenen</title><tracks><track><title>vivace piano</title></track></tracks></cd>",
];

/// The mutation workload: inserts reusing known paths, inserts forcing
/// schema rebuilds (new labels and new label-type paths), and deletes of
/// shifting positions, interleaved.
fn workload() -> Vec<MutOp> {
    let mut ops = vec![
        MutOp::Insert(
            "<cd><title>piano concerto</title><composer>rachmaninov</composer></cd>".into(),
        ),
        MutOp::Insert("<mc><title>piano</title><track>allegro vivace</track></mc>".into()),
        MutOp::Delete(0),
        MutOp::Insert("<cd><title>cello suite</title></cd>".into()),
        MutOp::Delete(1),
        MutOp::Insert("<opera><title>figaro</title><aria>voi che sapete</aria></opera>".into()),
    ];
    for i in 1..scale() {
        ops.push(MutOp::Insert(format!(
            "<cd><title>round {i} piano</title><composer>gen{i}</composer></cd>"
        )));
        ops.push(MutOp::Insert(format!(
            "<extra{i}><title>novel path {i}</title></extra{i}>"
        )));
        ops.push(MutOp::Delete(i % 3));
    }
    ops
}

fn parse(xml: &str) -> Document {
    parse_document(xml).unwrap()
}

/// The k-th live document root, if any.
fn live_root(db: &Database, k: usize) -> Option<NodeId> {
    db.tree()
        .documents()
        .iter()
        .filter(|d| d.alive)
        .nth(k)
        .map(|d| NodeId(d.start))
}

/// The query battery answered after every commit: known paths, a rebuilt
/// path, approximate matches, and a query over labels that deletes empty.
const QUERIES: &[&str] = &[
    r#"cd[title["piano"]]"#,
    r#"cd[track[title["piano" and "vivace"]]]"#,
    r#"mc[track["allegro"]]"#,
    r#"opera[aria["sapete"]]"#,
    r#"cd[composer]"#,
];

/// Every query's direct and schema results (roots and costs), in a fixed
/// order — the unit of oracle comparison.
fn answers(db: &Database, threads: usize) -> Vec<Vec<(u32, Cost)>> {
    let opts = EvalOptions {
        threads,
        ..Default::default()
    };
    let mut out = Vec::new();
    for q in QUERIES {
        let direct = db.query_direct_with(q, Some(10), opts).unwrap().0;
        let schema = db
            .query_schema_with(q, 10, opts, SchemaEvalConfig::default())
            .unwrap()
            .0;
        for hits in [direct, schema] {
            out.push(hits.into_iter().map(|h| (h.root.0, h.cost)).collect());
        }
    }
    out
}

fn seed_database() -> Database {
    Database::from_xml_strs(SEED_DOCS, approxql_cost::CostModel::new()).unwrap()
}

/// Applies one workload op to a [`DbFile`]; `Ok(false)` means the op was
/// a skipped delete (no commit happened).
fn apply_file(file: &mut DbFile, op: &MutOp) -> Result<bool, approxql_core::DatabaseError> {
    match op {
        MutOp::Insert(xml) => {
            file.insert_documents(&[parse(xml)])?;
            Ok(true)
        }
        MutOp::Delete(k) => match live_root(file.database(), *k) {
            Some(root) => {
                file.delete_document(root)?;
                Ok(true)
            }
            None => Ok(false),
        },
    }
}

/// Replays the workload against a crashing backend, reopens from what
/// survived, and verifies durability, integrity, oracle equality at 1 and
/// 4 threads, and that the recovered file still accepts mutations.
fn run_crash_case(
    ops: &[MutOp],
    models: &HashMap<u64, Vec<Vec<(u32, Cost)>>>,
    mode: CrashMode,
    crash_at: u64,
) {
    let shared = SharedMemBackend::new();
    let fb = FaultBackend::new(
        Box::new(shared.clone()),
        FaultConfig {
            crash_after_ops: Some(crash_at),
            mode,
            fail_sync_at: None,
            seed: crash_at ^ 0x5EED,
        },
    );

    // Replay until the crash; track the highest *acknowledged* commit.
    let mut acked: u64 = 0;
    'run: {
        let Ok(store) = Store::create(Box::new(fb)) else {
            break 'run;
        };
        let Ok(mut file) = DbFile::create_in(store, seed_database()) else {
            break 'run;
        };
        acked = file.commit_sequence();
        for op in ops {
            if apply_file(&mut file, op).is_err() {
                break 'run;
            }
            acked = file.commit_sequence();
        }
    }

    // "Power back on": reopen from what actually reached the disk.
    let disk = SharedMemBackend::from(shared.snapshot());
    let mut store = match Store::open(Box::new(disk.clone())) {
        Ok(s) => s,
        Err(e) => {
            assert_eq!(acked, 0, "acknowledged commit {acked} lost entirely: {e}");
            return;
        }
    };
    let csn = store.commit_sequence();
    assert!(
        csn >= acked,
        "crash@{crash_at} {mode:?}: acknowledged commit {acked} rolled back to {csn}"
    );
    // Storage-level integrity always holds on a recovered store.
    store
        .check()
        .unwrap_or_else(|e| panic!("crash@{crash_at} {mode:?}: check failed: {e}"));
    if csn < 2 {
        // The crash preceded the initial full-image commit: an empty (but
        // intact) store is the correct recovery; there is nothing to load.
        assert!(acked < 2, "image commit {acked} acked but rolled back");
        return;
    }

    // Database-level recovery: the full image must load, pass the posting
    // checker, and answer the battery exactly like the commit's oracle.
    approxql_index::persist::check_posting_blocks(&mut store)
        .unwrap_or_else(|e| panic!("crash@{crash_at} {mode:?}: posting check failed: {e}"));
    let mut file = DbFile::open_in(store)
        .unwrap_or_else(|e| panic!("crash@{crash_at} {mode:?}: recovered image unreadable: {e}"));
    let oracle = models
        .get(&csn)
        .unwrap_or_else(|| panic!("crash@{crash_at} {mode:?}: impossible recovered commit {csn}"));
    for threads in [1, 4] {
        assert!(
            answers(file.database(), threads) == *oracle,
            "crash@{crash_at} {mode:?}: answers diverge from the commit-{csn} oracle at {threads} threads"
        );
    }

    // Livability: the recovered file accepts and persists a new document.
    file.insert_documents(&[parse("<cd><title>post recovery piano</title></cd>")])
        .unwrap();
    drop(file);
    let file = DbFile::open_in(Store::open(Box::new(disk)).unwrap()).unwrap();
    let q = r#"cd[title["piano"]]"#;
    let post = file.database().query_direct(q, None).unwrap();
    let pre_len = oracle[0].len();
    assert_eq!(
        post.len(),
        pre_len + 1,
        "crash@{crash_at} {mode:?}: post-recovery insert not persisted"
    );
}

#[test]
fn crash_at_every_backend_op_recovers_to_a_commit_boundary() {
    let ops = workload();

    // Clean run: build the per-commit oracle and count backend operations.
    let shared = SharedMemBackend::new();
    let fb = FaultBackend::new(Box::new(shared.clone()), FaultConfig::default());
    let ops_counter = fb.op_counter();
    let store = Store::create(Box::new(fb)).unwrap();
    let mut file = DbFile::create_in(store, seed_database()).unwrap();
    let mut models: HashMap<u64, Vec<Vec<(u32, Cost)>>> = HashMap::new();
    // Determinism across thread counts is part of the oracle's meaning.
    assert_eq!(answers(file.database(), 1), answers(file.database(), 4));
    models.insert(file.commit_sequence(), answers(file.database(), 1));
    for op in &ops {
        if apply_file(&mut file, op).unwrap() {
            models.insert(file.commit_sequence(), answers(file.database(), 1));
        }
    }
    let committed = file.commit_sequence();
    assert!(
        committed >= 2 + (ops.len() as u64) - 1,
        "workload mostly skipped"
    );
    drop(file);
    let total_ops = ops_counter.get();
    assert!(
        total_ops > 100,
        "workload too small: {total_ops} backend ops"
    );

    // The sweep: every backend-op index, in every crash mode. Debug runs
    // stride the indices to stay fast; `APPROXQL_TORTURE_SCALE > 1` (the
    // CI release sweep) covers every single index.
    let stride = if scale() > 1 { 1 } else { 7 };
    for mode in [
        CrashMode::AfterWrite,
        CrashMode::TornWrite,
        CrashMode::DropWrite,
    ] {
        let mut crash_at = 0;
        while crash_at < total_ops {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_crash_case(&ops, &models, mode, crash_at)
            }));
            if outcome.is_err() {
                panic!("panicked at crash index {crash_at} in mode {mode:?}");
            }
            crash_at += stride;
        }
    }
}

#[test]
fn bit_flips_in_a_mutated_store_are_caught_by_check() {
    // Grow a store through mutations, then flip bits in its pages: the
    // full check (storage + postings + image load) must reject every one.
    let dir = std::env::temp_dir().join(format!("axql-mut-flip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.axql");
    {
        let mut file = DbFile::create(&path, seed_database()).unwrap();
        for op in workload() {
            apply_file(&mut file, &op).unwrap();
        }
    }
    Database::check_file(&path).unwrap();
    let base = std::fs::read(&path).unwrap();
    let trials = 40 * scale();
    for trial in 0..trials {
        // Deterministic pseudo-random positions past the header slots.
        let mut x = (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        x ^= x >> 29;
        let pos = 2 * 4096 + (x as usize % (base.len() - 2 * 4096));
        let bit = (x >> 33) % 8;
        let mut corrupted = base.clone();
        corrupted[pos] ^= 1 << bit;
        std::fs::write(&path, &corrupted).unwrap();
        assert!(
            Database::check_file(&path).is_err(),
            "flip at byte {pos} bit {bit} went undetected"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
