//! A deliberately naive reference evaluator (test oracle).
//!
//! This module follows the *theoretical* evaluation procedure of Section
//! 5.3 step by step: break the query into its separated representation,
//! explicitly enumerate the semi-transformed queries (all combinations of
//! deletions and renamings), and find embeddings of each by brute-force
//! recursive search over the data tree, charging insertions through the
//! node-distance function. It shares no code with the list-algebra
//! evaluators, which makes it a meaningful oracle for the property tests:
//! `primary` (direct) and the schema-driven evaluation must produce
//! exactly the same root–cost pairs.
//!
//! The closure of a query is infinite (insertions can be repeated); the
//! enumeration is finite because insertions are *implicit*: an embedding
//! maps query edges to ancestor–descendant pairs and pays the insert costs
//! of the skipped nodes — exactly Definition 8 restated.
//!
//! Complexity is exponential in the query size and quadratic in the data
//! size. Use only on small inputs.

use approxql_cost::{Cost, CostModel, NodeType};
use approxql_query::{ConjunctiveNode, Query};
use approxql_tree::{DataTree, NodeId};

/// One semi-transformed query node.
#[derive(Debug, Clone)]
struct VNode {
    label: String,
    ty: NodeType,
    children: Vec<VNode>,
}

/// A semi-transformed query: transformation cost so far plus the number of
/// original query leaves it retains.
#[derive(Debug, Clone)]
struct Variant {
    root: VNode,
    cost: Cost,
    leaves_kept: usize,
}

/// The oracle evaluator.
pub struct ReferenceEvaluator<'a> {
    tree: &'a DataTree,
    costs: &'a CostModel,
}

impl<'a> ReferenceEvaluator<'a> {
    /// Creates an evaluator over `tree` with transformation costs `costs`.
    /// The tree must have been encoded with the same cost model.
    pub fn new(tree: &'a DataTree, costs: &'a CostModel) -> Self {
        ReferenceEvaluator { tree, costs }
    }

    /// Solves the best-n-pairs problem (Definition 12) naively.
    /// `None` returns all root–cost pairs.
    pub fn best_n(
        &self,
        query: &Query,
        n: Option<usize>,
        enforce_leaf_match: bool,
    ) -> Vec<(u32, Cost)> {
        let mut best: Vec<Cost> = vec![Cost::INFINITY; self.tree.len()];
        for conj in query.separate() {
            for variant in self.enumerate(&conj.root) {
                if enforce_leaf_match && variant.leaves_kept == 0 {
                    continue;
                }
                if !variant.cost.is_finite() {
                    continue;
                }
                for d in self.tree.nodes() {
                    let c = self.embed(&variant.root, d);
                    if c.is_finite() {
                        let total = variant.cost + c;
                        if total < best[d.index()] {
                            best[d.index()] = total;
                        }
                    }
                }
            }
        }
        let mut pairs: Vec<(u32, Cost)> = best
            .into_iter()
            .enumerate()
            .filter(|(_, c)| c.is_finite())
            .map(|(i, c)| (i as u32, c))
            .collect();
        pairs.sort_by_key(|&(pre, c)| (c, pre));
        if let Some(n) = n {
            pairs.truncate(n);
        }
        pairs
    }

    /// Alternatives for one node, each a *splice*: the sequence of nodes
    /// that takes the original node's place (empty for a deleted leaf,
    /// the child sequence for a deleted inner node).
    fn enumerate_splices(
        &self,
        node: &ConjunctiveNode,
        is_root: bool,
    ) -> Vec<(Vec<VNode>, Cost, usize)> {
        let ty = match node {
            ConjunctiveNode::Struct { .. } => NodeType::Struct,
            ConjunctiveNode::Text { .. } => NodeType::Text,
        };
        let label = node.label();
        let mut out = Vec::new();
        if node.is_leaf() {
            // Keep (with original label or any renaming) …
            out.push((
                vec![VNode {
                    label: label.to_owned(),
                    ty,
                    children: Vec::new(),
                }],
                Cost::ZERO,
                1,
            ));
            for (ren, c_ren) in self.costs.renamings(ty, label) {
                out.push((
                    vec![VNode {
                        label: ren.clone(),
                        ty,
                        children: Vec::new(),
                    }],
                    *c_ren,
                    1,
                ));
            }
            // … or delete the leaf (never the root).
            if !is_root {
                let del = self.costs.delete_cost(ty, label);
                if del.is_finite() {
                    out.push((Vec::new(), del, 0));
                }
            }
            return out;
        }
        // Inner node: combine the child splices first.
        let mut assembled: Vec<(Vec<VNode>, Cost, usize)> = vec![(Vec::new(), Cost::ZERO, 0)];
        for child in node.children() {
            let child_splices = self.enumerate_splices(child, false);
            let mut next = Vec::with_capacity(assembled.len() * child_splices.len());
            for (nodes, cost, leaves) in &assembled {
                for (c_nodes, c_cost, c_leaves) in &child_splices {
                    let mut nodes = nodes.clone();
                    nodes.extend(c_nodes.iter().cloned());
                    next.push((nodes, *cost + *c_cost, leaves + c_leaves));
                }
            }
            assembled = next;
        }
        for (children, cost, leaves) in &assembled {
            // Keep the node (original label or renaming) …
            out.push((
                vec![VNode {
                    label: label.to_owned(),
                    ty,
                    children: children.clone(),
                }],
                *cost,
                *leaves,
            ));
            for (ren, c_ren) in self.costs.renamings(ty, label) {
                out.push((
                    vec![VNode {
                        label: ren.clone(),
                        ty,
                        children: children.clone(),
                    }],
                    *cost + *c_ren,
                    *leaves,
                ));
            }
            // … or delete it, splicing the children into the parent.
            if !is_root {
                let del = self.costs.delete_cost(ty, label);
                if del.is_finite() {
                    out.push((children.clone(), *cost + del, *leaves));
                }
            }
        }
        out
    }

    fn enumerate(&self, root: &ConjunctiveNode) -> Vec<Variant> {
        self.enumerate_splices(root, true)
            .into_iter()
            .filter_map(|(mut nodes, cost, leaves_kept)| {
                debug_assert_eq!(nodes.len(), 1, "the root is never spliced away");
                nodes.pop().map(|root| Variant {
                    root,
                    cost,
                    leaves_kept,
                })
            })
            .collect()
    }

    /// Cost of embedding the semi-transformed subtree `v` with its root
    /// mapped to data node `d` — infinite if impossible. Insertions are
    /// charged through [`DataTree::distance`].
    fn embed(&self, v: &VNode, d: NodeId) -> Cost {
        if self.tree.node_type(d) != v.ty || self.tree.label(d) != v.label {
            return Cost::INFINITY;
        }
        let mut total = Cost::ZERO;
        for child in &v.children {
            let mut best = Cost::INFINITY;
            for desc in self.tree.descendants_inclusive(d).skip(1) {
                let sub = self.embed(child, desc);
                if sub.is_finite() {
                    best = best.min(self.tree.distance(d, desc) + sub);
                }
            }
            total += best;
            if !total.is_finite() {
                return Cost::INFINITY;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_cost::tables::paper_section6_costs;
    use approxql_query::parse_query;
    use approxql_tree::DataTreeBuilder;

    fn catalog(costs: &CostModel) -> DataTree {
        let mut b = DataTreeBuilder::new();
        b.begin_struct("cd");
        b.begin_struct("title");
        b.add_text("piano concerto");
        b.end();
        b.begin_struct("composer");
        b.add_text("rachmaninov");
        b.end();
        b.end();
        b.begin_struct("cd");
        b.begin_struct("title");
        b.add_text("kinderszenen");
        b.end();
        b.begin_struct("tracks");
        b.begin_struct("track");
        b.begin_struct("title");
        b.add_text("vivace piano");
        b.end();
        b.end();
        b.end();
        b.end();
        b.build(costs)
    }

    #[test]
    fn oracle_finds_the_exact_match() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let ev = ReferenceEvaluator::new(&tree, &costs);
        let q = parse_query(r#"cd[title["piano" and "concerto"]]"#).unwrap();
        let hits = ev.best_n(&q, None, true);
        assert_eq!(hits[0], (1, Cost::ZERO));
        assert_eq!(hits[1], (7, Cost::finite(8)));
    }

    #[test]
    fn oracle_agrees_with_primary_on_the_catalog() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let index = approxql_index::LabelIndex::build(&tree);
        let ev = ReferenceEvaluator::new(&tree, &costs);
        for query in [
            r#"cd[title["piano"]]"#,
            r#"cd[title["piano" and "concerto"]]"#,
            r#"cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]]"#,
            r#"cd[title["concerto" or "kinderszenen"]]"#,
            r#"mc[title["piano"]]"#,
            "cd[tracks]",
            "cd",
        ] {
            let q = parse_query(query).unwrap();
            let ex = approxql_query::expand::ExpandedQuery::build(&q, &costs);
            let (fast, _) = crate::direct::best_n(
                &ex,
                &index,
                tree.interner(),
                None,
                crate::direct::EvalOptions::default(),
            );
            let slow = ev.best_n(&q, None, true);
            assert_eq!(fast, slow, "oracle mismatch for {query}");
        }
    }

    #[test]
    fn oracle_respects_leaf_rule_flag() {
        let costs = CostModel::builder()
            .delete(NodeType::Text, "nonexistent", Cost::finite(1))
            .build();
        let tree = catalog(&costs);
        let ev = ReferenceEvaluator::new(&tree, &costs);
        let q = parse_query(r#"cd[title["nonexistent"]]"#).unwrap();
        assert!(ev.best_n(&q, None, true).is_empty());
        let loose = ev.best_n(&q, None, false);
        assert_eq!(loose.len(), 2);
    }

    #[test]
    fn oracle_truncates_to_n() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let ev = ReferenceEvaluator::new(&tree, &costs);
        let q = parse_query(r#"cd[title["piano"]]"#).unwrap();
        assert_eq!(ev.best_n(&q, Some(1), true).len(), 1);
    }
}
