//! Mutable on-disk databases (DESIGN.md §15).
//!
//! A [`DbFile`] pairs an open [`Store`] with its in-memory [`Database`]
//! and keeps the two in lockstep: every [`DbFile::insert_documents`] /
//! [`DbFile::delete_document`] call applies the mutation in memory,
//! writes exactly the changed keys, and seals them with **one atomic
//! commit per document**. A crash at any point therefore rolls back to
//! the last committed document boundary — never to a half-indexed state —
//! which is what the mutation crash-torture suite sweeps for.

use crate::database::{doc_key, load_from_store, write_full_image, Database, DatabaseError};
use approxql_index::persist::{label_key, save_blob, save_secondary_index, sec_key};
use approxql_metrics::Metric;
use approxql_storage::Store;
use approxql_tree::{encode_docmap, encode_interner, DocSpan, NodeId};
use approxql_xml::Document;
use std::path::Path;

/// A database bound to the store file it lives in, accepting incremental
/// document mutations. Created with [`DbFile::create`] (writes a full
/// image) or [`DbFile::open`] (reassembles the persisted state).
pub struct DbFile {
    store: Store,
    db: Database,
}

impl DbFile {
    /// Creates a new store file at `path` holding `db`'s full image.
    pub fn create(path: impl AsRef<Path>, db: Database) -> Result<DbFile, DatabaseError> {
        DbFile::create_in(Store::create_file(path)?, db)
    }

    /// Like [`DbFile::create`] over an already-constructed (fresh) store —
    /// the entry point for fault-injecting backends in tests.
    pub fn create_in(mut store: Store, db: Database) -> Result<DbFile, DatabaseError> {
        write_full_image(&mut store, &db)?;
        store.commit()?;
        Ok(DbFile { store, db })
    }

    /// Opens the database stored at `path` for reading and mutation.
    pub fn open(path: impl AsRef<Path>) -> Result<DbFile, DatabaseError> {
        DbFile::open_in(Store::open_file(path)?)
    }

    /// Like [`DbFile::open`] over an already-opened store.
    pub fn open_in(mut store: Store) -> Result<DbFile, DatabaseError> {
        let db = load_from_store(&mut store)?;
        Ok(DbFile { store, db })
    }

    /// The in-memory database (query entry points live here).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The store's commit sequence number (one increment per persisted
    /// document mutation).
    pub fn commit_sequence(&self) -> u64 {
        self.store.commit_sequence()
    }

    /// Inserts each parsed document as its own atomically-committed
    /// mutation, returning the new documents' preorder spans. If the
    /// process dies partway through, every fully-committed document
    /// survives recovery and the in-flight one vanishes entirely.
    pub fn insert_documents(&mut self, docs: &[Document]) -> Result<Vec<DocSpan>, DatabaseError> {
        let mut spans = Vec::with_capacity(docs.len());
        for doc in docs {
            let delta = self.db.insert_document(doc);
            save_blob(
                &mut self.store,
                "docmap",
                &encode_docmap(self.db.tree().len() as u32, self.db.tree().documents()),
            )?;
            if delta.interner_changed {
                save_blob(
                    &mut self.store,
                    "interner",
                    &encode_interner(self.db.tree().interner()),
                )?;
            }
            self.store.put(
                &doc_key(delta.span.start),
                &self.db.tree().doc_segment_bytes(delta.span),
            )?;
            self.write_label_updates(&delta.touched_labels, &delta.removed_labels)?;
            if delta.schema.rebuilt {
                // A structural extension remapped schema preorder numbers:
                // every secondary key may have moved, so clear and rewrite
                // the whole `sec#` keyspace along with the schema tree.
                let stale: Vec<Vec<u8>> = self
                    .store
                    .scan_prefix(b"sec#")?
                    .collect_all()?
                    .into_iter()
                    .map(|(k, _)| k)
                    .collect();
                for k in stale {
                    self.store.delete(&k)?;
                }
                save_secondary_index(
                    &mut self.store,
                    self.db.schema().secondary(),
                    self.db.tree().interner(),
                )?;
                save_blob(
                    &mut self.store,
                    "schema",
                    &self.db.schema().tree().to_bytes(),
                )?;
            } else {
                self.write_secondary_updates(&delta.schema.touched_sec, &delta.schema.removed_sec)?;
            }
            self.store.commit()?;
            Metric::StoreDocInserts.incr();
            spans.push(delta.span);
        }
        Ok(spans)
    }

    /// Tombstones the document rooted at `root` and commits. Returns the
    /// removed span, or `None` (with nothing written) when `root` is not
    /// a live document root.
    pub fn delete_document(&mut self, root: NodeId) -> Result<Option<DocSpan>, DatabaseError> {
        let Some(delta) = self.db.delete_document(root) else {
            return Ok(None);
        };
        save_blob(
            &mut self.store,
            "docmap",
            &encode_docmap(self.db.tree().len() as u32, self.db.tree().documents()),
        )?;
        self.store.delete(&doc_key(delta.span.start))?;
        self.write_label_updates(&delta.touched_labels, &delta.removed_labels)?;
        // Deletion never restructures the schema tree (instance-less
        // nodes are retained so preorder numbers stay stable).
        self.write_secondary_updates(&delta.schema.touched_sec, &delta.schema.removed_sec)?;
        self.store.commit()?;
        Metric::StoreDocDeletes.incr();
        Ok(Some(delta.span))
    }

    /// Rewrites the changed label-index keys and deletes the emptied ones.
    fn write_label_updates(
        &mut self,
        touched: &[(approxql_cost::NodeType, approxql_tree::LabelId)],
        removed: &[(approxql_cost::NodeType, approxql_tree::LabelId)],
    ) -> Result<(), DatabaseError> {
        for &(ty, label) in touched {
            let name = self.db.tree().interner().resolve(label);
            let Some(blocks) = self.db.labels().blocks(ty, label) else {
                debug_assert!(false, "touched label posting missing from index");
                continue;
            };
            self.store.put(&label_key(ty, name), &blocks.to_bytes())?;
        }
        for &(ty, label) in removed {
            let name = self.db.tree().interner().resolve(label);
            self.store.delete(&label_key(ty, name))?;
        }
        Ok(())
    }

    /// Rewrites the changed secondary-index keys and deletes the emptied
    /// ones.
    fn write_secondary_updates(
        &mut self,
        touched: &[(u32, approxql_tree::LabelId)],
        removed: &[(u32, approxql_tree::LabelId)],
    ) -> Result<(), DatabaseError> {
        for &(pre, label) in touched {
            let name = self.db.tree().interner().resolve(label);
            let Some(blocks) = self.db.schema().secondary().blocks(pre, label) else {
                debug_assert!(false, "touched secondary posting missing from index");
                continue;
            };
            self.store.put(&sec_key(pre, name), &blocks.to_bytes())?;
        }
        for &(pre, label) in removed {
            let name = self.db.tree().interner().resolve(label);
            self.store.delete(&sec_key(pre, name))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_cost::CostModel;
    use approxql_xml::parse_document;

    fn doc(xml: &str) -> Document {
        parse_document(xml).unwrap()
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("axql-dbfile-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("db.axql")
    }

    #[test]
    fn insert_then_reopen_matches_memory() {
        let path = temp_path("insert");
        let db = Database::from_xml_str("<cd><title>piano</title></cd>", CostModel::new()).unwrap();
        let mut file = DbFile::create(&path, db).unwrap();
        file.insert_documents(&[doc("<cd><title>cello</title></cd>")])
            .unwrap();
        let live = file.database().query_direct(r#"cd[title]"#, None).unwrap();
        assert_eq!(live.len(), 2);
        drop(file);
        let reopened = DbFile::open(&path).unwrap();
        let persisted = reopened
            .database()
            .query_direct(r#"cd[title]"#, None)
            .unwrap();
        assert_eq!(live, persisted);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn delete_then_reopen_matches_memory() {
        let path = temp_path("delete");
        let db = Database::from_xml_strs(
            &[
                "<cd><title>piano</title></cd>",
                "<cd><title>cello</title></cd>",
            ],
            CostModel::new(),
        )
        .unwrap();
        let mut file = DbFile::create(&path, db).unwrap();
        let first = file.database().tree().documents()[0];
        let span = file
            .delete_document(approxql_tree::NodeId(first.start))
            .unwrap()
            .expect("first document is live");
        assert_eq!(span.start, first.start);
        assert!(file
            .delete_document(approxql_tree::NodeId(span.start))
            .unwrap()
            .is_none());
        let live = file.database().query_direct(r#"cd[title]"#, None).unwrap();
        assert_eq!(live.len(), 1);
        drop(file);
        let reopened = DbFile::open(&path).unwrap();
        assert_eq!(
            reopened
                .database()
                .query_direct(r#"cd[title]"#, None)
                .unwrap(),
            live
        );
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn mutation_metrics_count_commits() {
        let before = approxql_metrics::snapshot();
        let db = Database::from_xml_str("<a><b>x</b></a>", CostModel::new()).unwrap();
        let mut file = DbFile::create_in(Store::in_memory().unwrap(), db).unwrap();
        let csn_created = file.commit_sequence();
        let spans = file
            .insert_documents(&[doc("<a><b>y</b></a>"), doc("<a><b>z</b></a>")])
            .unwrap();
        file.delete_document(NodeId(spans[0].start)).unwrap();
        let delta = approxql_metrics::snapshot().diff(&before);
        assert_eq!(delta.get(Metric::StoreDocInserts), 2);
        assert_eq!(delta.get(Metric::StoreDocDeletes), 1);
        // One commit per mutation: 2 inserts + 1 delete.
        assert_eq!(file.commit_sequence(), csn_created + 3);
    }
}
