//! The adapted top-k list operations of Section 7.2.
//!
//! Run against the *schema*, the evaluation must keep not just the best
//! embedding per (query subtree, schema subtree) but the best **k** — each
//! one a distinct *second-level query*. Lists therefore consist of
//! *segments*: runs of entries with the same preorder number, sorted by
//! cost, at most `k` entries long.
//!
//! Entries are extended by a `label` (the matched, possibly renamed label)
//! and by `children` pointers to the skeleton nodes of the embedding image
//! (the paper's `pointers` set); a root entry plus the nodes reachable
//! through the pointers *is* the second-level query.
//!
//! Unlike the direct evaluation's grouped minima, each top-k entry is one
//! concrete embedding, so the leaf rule reduces to a boolean flag.

use approxql_index::LabelIndex;
use approxql_metrics::Metric;
use approxql_tree::{Cost, LabelId, NodeType};
use std::sync::Arc;

/// A node of a second-level query: a schema node, the (possibly renamed)
/// label it must carry, and the required descendant skeletons.
#[derive(Debug, PartialEq, Eq)]
pub struct Skeleton {
    /// Preorder number of the schema node.
    pub pre: u32,
    /// Label the instances must carry (for struct nodes: the node name;
    /// for text classes: the matched word).
    pub label: LabelId,
    /// Required descendants.
    pub children: Vec<Arc<Skeleton>>,
}

impl Skeleton {
    /// Number of nodes in this skeleton.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|c| c.size()).sum::<usize>()
    }
}

/// A top-k list entry (Section 7.2's extended entry structure).
#[derive(Debug, Clone)]
pub struct KEntry {
    /// Preorder number of the schema node.
    pub pre: u32,
    /// Bound of the schema node.
    pub bound: u32,
    /// Pathcost of the schema node.
    pub pathcost: Cost,
    /// Insert cost of the schema node.
    pub inscost: Cost,
    /// Embedding cost of this (single) embedding.
    pub cost: Cost,
    /// Whether the embedding matches at least one original query leaf.
    pub has_leaf: bool,
    /// The matched label (the paper's `label` component).
    pub label: LabelId,
    /// Skeletons of the matched descendants (the paper's `pointers`).
    pub children: Vec<Arc<Skeleton>>,
}

impl KEntry {
    /// Materializes the skeleton rooted at this entry.
    pub fn skeleton(&self) -> Arc<Skeleton> {
        Arc::new(Skeleton {
            pre: self.pre,
            label: self.label,
            children: self.children.clone(),
        })
    }
}

/// A segmented list: sorted by `pre`; entries with equal `pre` form a
/// segment sorted by cost, at most `k` long.
pub type KList = Vec<KEntry>;

/// Iterates over the segments (maximal equal-`pre` runs) of a list.
pub fn segments(list: &KList) -> impl Iterator<Item = &[KEntry]> {
    SegmentIter { list, pos: 0 }
}

struct SegmentIter<'a> {
    list: &'a KList,
    pos: usize,
}

impl<'a> Iterator for SegmentIter<'a> {
    type Item = &'a [KEntry];

    fn next(&mut self) -> Option<&'a [KEntry]> {
        if self.pos >= self.list.len() {
            return None;
        }
        let start = self.pos;
        let pre = self.list[start].pre;
        while self.pos < self.list.len() && self.list[self.pos].pre == pre {
            self.pos += 1;
        }
        Some(&self.list[start..self.pos])
    }
}

/// Counts one top-k list operation plus the entries its output carries.
fn record_k(out: KList) -> KList {
    Metric::TopkOps.incr();
    Metric::TopkEntriesProduced.add(out.len() as u64);
    out
}

fn push_segment(out: &mut KList, mut seg: Vec<KEntry>, k: usize) {
    seg.sort_by_key(|e| e.cost); // stable: creation order breaks ties
    seg.truncate(k);
    out.extend(seg);
}

/// `fetch` for the schema run: one zero-cost entry per schema node, tagged
/// with the fetched label.
pub fn fetch_k(index: &LabelIndex, ty: NodeType, label: LabelId, is_leaf: bool) -> KList {
    let out = index
        .fetch(ty, label)
        .iter()
        .map(|p| KEntry {
            pre: p.pre,
            bound: p.bound,
            pathcost: p.pathcost,
            inscost: p.inscost,
            cost: Cost::ZERO,
            has_leaf: is_leaf,
            label,
            children: Vec::new(),
        })
        .collect();
    record_k(out)
}

/// Adds `c` to every entry's cost.
pub fn shift_k(mut l: KList, c: Cost) -> KList {
    Metric::TopkOps.incr(); // pass-through: entries counted where produced
    if c != Cost::ZERO {
        for e in &mut l {
            e.cost += c;
        }
    }
    l
}

/// `merge` for segments: interleaves two lists; entries from `right` pay
/// `c_ren`. Segments falling on the same schema node (two words sharing a
/// text class) are merged and re-capped at `k`.
pub fn merge_k(left: &KList, right: &KList, c_ren: Cost, k: usize) -> KList {
    let mut out = Vec::with_capacity(left.len() + right.len());
    // Segments borrow from the underlying lists, not the iterators, so a
    // peeked slice stays usable after `next()` advances past it.
    let mut ls = segments(left).peekable();
    let mut rs = segments(right).peekable();
    let renamed = |seg: &[KEntry]| -> Vec<KEntry> {
        seg.iter()
            .cloned()
            .map(|mut e| {
                e.cost += c_ren;
                e
            })
            .collect()
    };
    loop {
        match (ls.peek().copied(), rs.peek().copied()) {
            (None, None) => break,
            (Some(l), None) => {
                ls.next();
                out.extend(l.iter().cloned());
            }
            (None, Some(r)) => {
                rs.next();
                push_segment(&mut out, renamed(r), k);
            }
            (Some(l), Some(r)) => {
                if l[0].pre < r[0].pre {
                    ls.next();
                    out.extend(l.iter().cloned());
                } else if r[0].pre < l[0].pre {
                    rs.next();
                    push_segment(&mut out, renamed(r), k);
                } else {
                    ls.next();
                    rs.next();
                    let mut seg = l.to_vec();
                    seg.extend(renamed(r));
                    push_segment(&mut out, seg, k);
                }
            }
        }
    }
    record_k(out)
}

/// Candidate collected while scanning an ancestor's descendant interval.
#[derive(Clone)]
struct Candidate {
    /// `pathcost(d) + cost(d)` — ordering key (ancestor shift is constant).
    key: Cost,
    /// Index into the descendant list (deterministic tiebreak).
    seq: usize,
}

/// Bounded candidate collector (keeps the `k` smallest keys).
struct TopK {
    k: usize,
    items: Vec<Candidate>, // small k: linear maintenance is fine
}

impl TopK {
    fn new(k: usize) -> TopK {
        TopK {
            k,
            items: Vec::new(),
        }
    }

    fn offer(&mut self, c: Candidate) {
        if !c.key.is_finite() {
            return;
        }
        let pos = self
            .items
            .partition_point(|x| (x.key, x.seq) <= (c.key, c.seq));
        if pos >= self.k {
            return;
        }
        self.items.insert(pos, c);
        self.items.truncate(self.k);
    }

    fn absorb(&mut self, other: TopK) {
        for c in other.items {
            self.offer(c);
        }
    }
}

/// Core of `join`/`outerjoin` (Section 7.2): for each ancestor, the best
/// `k` descendants by `distance + cost`, via the same fold-on-pop stack as
/// the direct join.
fn interval_topk(ancestors: &KList, descendants: &KList, k: usize) -> Vec<TopK> {
    let mut result: Vec<TopK> = (0..ancestors.len()).map(|_| TopK::new(k)).collect();
    let mut stack: Vec<(usize, TopK)> = Vec::new();
    let (mut i, mut j) = (0, 0);

    macro_rules! close_until {
        ($pre:expr) => {
            while let Some((top, _)) = stack.last() {
                if ancestors[*top].bound >= $pre {
                    break;
                }
                let Some((top, collected)) = stack.pop() else {
                    break;
                };
                if let Some((_, parent)) = stack.last_mut() {
                    let mut copy = TopK::new(k);
                    copy.items = collected.items.clone();
                    parent.absorb(copy);
                }
                result[top] = collected;
            }
        };
    }

    while i < ancestors.len() || j < descendants.len() {
        let descendant_turn = match (ancestors.get(i), descendants.get(j)) {
            (Some(a), Some(d)) => d.pre <= a.pre,
            (None, Some(_)) => true,
            _ => false,
        };
        if descendant_turn {
            let d = &descendants[j];
            close_until!(d.pre);
            if let Some((top, coll)) = stack.last_mut() {
                if ancestors[*top].pre < d.pre {
                    coll.offer(Candidate {
                        key: d.pathcost + d.cost,
                        seq: j,
                    });
                }
            }
            j += 1;
        } else {
            let pre = ancestors[i].pre;
            close_until!(pre);
            stack.push((i, TopK::new(k)));
            i += 1;
        }
    }
    close_until!(u32::MAX);
    result
}

fn emit_descendant(a: &KEntry, d: &KEntry, key: Cost, c_edge: Cost) -> KEntry {
    let slack = key
        .checked_sub(a.pathcost)
        .and_then(|c| c.checked_sub(a.inscost));
    debug_assert!(
        slack.is_some(),
        "descendant pathcost covers ancestor pathcost + inscost"
    );
    // In release, an underflow (impossible by the interval-topk invariant)
    // degrades to an infinite cost, which ranking discards, not a panic.
    let cost = slack.unwrap_or(Cost::INFINITY) + c_edge;
    KEntry {
        cost,
        has_leaf: d.has_leaf,
        children: vec![d.skeleton()],
        ..a.clone()
    }
}

/// `join` (Section 7.2): for each ancestor, one output entry per kept
/// descendant (at most `k`), pointer set initialized with that descendant.
pub fn join_k(ancestors: &KList, descendants: &KList, c_edge: Cost, k: usize) -> KList {
    let collected = interval_topk(ancestors, descendants, k);
    let mut out = Vec::new();
    for (a, coll) in ancestors.iter().zip(collected) {
        for c in &coll.items {
            out.push(emit_descendant(a, &descendants[c.seq], c.key, c_edge));
        }
    }
    record_k(out)
}

/// `outerjoin` (Section 7.2): like `join`, plus the deletion alternative
/// (cost `c_del`, empty pointer set) competing for the `k` slots.
pub fn outerjoin_k(
    ancestors: &KList,
    descendants: &KList,
    c_edge: Cost,
    c_del: Cost,
    k: usize,
) -> KList {
    let collected = interval_topk(ancestors, descendants, k);
    let mut out = Vec::new();
    for (a, coll) in ancestors.iter().zip(collected) {
        let mut seg: Vec<KEntry> = coll
            .items
            .iter()
            .map(|c| emit_descendant(a, &descendants[c.seq], c.key, c_edge))
            .collect();
        if c_del.is_finite() {
            seg.push(KEntry {
                cost: c_del + c_edge,
                has_leaf: false,
                children: Vec::new(),
                ..a.clone()
            });
        }
        push_segment(&mut out, seg, k);
    }
    record_k(out)
}

/// `intersect` (Section 7.2): for segments on the same schema node, the
/// `k` cheapest pairs; pointer sets are united.
pub fn intersect_k(left: &KList, right: &KList, c_edge: Cost, k: usize) -> KList {
    let mut out = Vec::new();
    let mut ls = segments(left).peekable();
    let mut rs = segments(right).peekable();
    while let (Some(&l), Some(&r)) = (ls.peek(), rs.peek()) {
        if l[0].pre < r[0].pre {
            ls.next();
        } else if r[0].pre < l[0].pre {
            rs.next();
        } else {
            ls.next();
            rs.next();
            let mut seg = Vec::with_capacity(l.len() * r.len());
            for a in l {
                for b in r {
                    let cost = a.cost + b.cost + c_edge;
                    if !cost.is_finite() {
                        continue;
                    }
                    let mut children = a.children.clone();
                    children.extend(b.children.iter().cloned());
                    seg.push(KEntry {
                        cost,
                        has_leaf: a.has_leaf || b.has_leaf,
                        children,
                        ..a.clone()
                    });
                }
            }
            push_segment(&mut out, seg, k);
        }
    }
    record_k(out)
}

/// `union` (Section 7.2): merges segments on the same schema node, keeping
/// the best `k`; lone segments are copied. `c_edge` applies to every
/// output entry.
pub fn union_k(left: &KList, right: &KList, c_edge: Cost, k: usize) -> KList {
    let mut out = Vec::new();
    let mut ls = segments(left).peekable();
    let mut rs = segments(right).peekable();
    loop {
        let seg: Vec<KEntry> = match (ls.peek().copied(), rs.peek().copied()) {
            (None, None) => break,
            (Some(l), None) => {
                ls.next();
                l.to_vec()
            }
            (None, Some(r)) => {
                rs.next();
                r.to_vec()
            }
            (Some(l), Some(r)) => {
                if l[0].pre < r[0].pre {
                    ls.next();
                    l.to_vec()
                } else if r[0].pre < l[0].pre {
                    rs.next();
                    r.to_vec()
                } else {
                    ls.next();
                    rs.next();
                    let mut seg = l.to_vec();
                    seg.extend(r.iter().cloned());
                    seg
                }
            }
        };
        let seg = seg
            .into_iter()
            .map(|mut e| {
                e.cost += c_edge;
                e
            })
            .filter(|e| e.cost.is_finite())
            .collect();
        push_segment(&mut out, seg, k);
    }
    record_k(out)
}

/// Final `sort` for the schema run: flattens the root list into the best
/// `k` second-level queries, ordered by `(cost, pre, segment position)`.
pub fn sort_k_best(k: usize, list: &KList, require_leaf: bool) -> Vec<KEntry> {
    let mut indexed: Vec<(usize, &KEntry)> = list
        .iter()
        .enumerate()
        .filter(|(_, e)| e.cost.is_finite() && (!require_leaf || e.has_leaf))
        .collect();
    indexed.sort_by_key(|(i, e)| (e.cost, e.pre, *i));
    let out: Vec<KEntry> = indexed
        .into_iter()
        .take(k)
        .map(|(_, e)| e.clone())
        .collect();
    record_k(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ke(pre: u32, bound: u32, pathcost: u64, cost: u64, label: u32) -> KEntry {
        KEntry {
            pre,
            bound,
            pathcost: Cost::finite(pathcost),
            inscost: Cost::finite(1),
            cost: Cost::finite(cost),
            has_leaf: true,
            label: LabelId(label),
            children: Vec::new(),
        }
    }

    #[test]
    fn segments_group_by_pre() {
        let l = vec![ke(1, 1, 0, 0, 0), ke(1, 1, 0, 2, 0), ke(4, 4, 0, 1, 0)];
        let segs: Vec<usize> = segments(&l).map(|s| s.len()).collect();
        assert_eq!(segs, vec![2, 1]);
    }

    #[test]
    fn join_k_emits_k_copies_per_ancestor() {
        let anc = vec![ke(1, 9, 0, 0, 7)];
        let desc = vec![ke(3, 3, 2, 5, 1), ke(4, 4, 2, 1, 2), ke(5, 5, 2, 3, 3)];
        let j = join_k(&anc, &desc, Cost::ZERO, 2);
        assert_eq!(j.len(), 2);
        // distance = 2 - 0 - 1 = 1; best costs 1+1=2 and 3+1=4.
        assert_eq!(j[0].cost, Cost::finite(2));
        assert_eq!(j[1].cost, Cost::finite(4));
        // pointers reference the matched descendants.
        assert_eq!(j[0].children[0].pre, 4);
        assert_eq!(j[1].children[0].pre, 5);
        // the ancestor's own label is preserved.
        assert_eq!(j[0].label, LabelId(7));
    }

    #[test]
    fn join_k_with_k1_equals_min() {
        let anc = vec![ke(1, 9, 0, 0, 0)];
        let desc = vec![ke(3, 3, 2, 5, 1), ke(4, 4, 2, 1, 2)];
        let j = join_k(&anc, &desc, Cost::ZERO, 1);
        assert_eq!(j.len(), 1);
        assert_eq!(j[0].cost, Cost::finite(2));
    }

    #[test]
    fn outerjoin_k_inserts_deletion_candidate_in_order() {
        let anc = vec![ke(1, 9, 0, 0, 0)];
        let desc = vec![ke(3, 3, 2, 5, 1)]; // match cost 6
        let oj = outerjoin_k(&anc, &desc, Cost::ZERO, Cost::finite(4), 2);
        assert_eq!(oj.len(), 2);
        assert_eq!(oj[0].cost, Cost::finite(4)); // deletion first
        assert!(!oj[0].has_leaf);
        assert!(oj[0].children.is_empty());
        assert_eq!(oj[1].cost, Cost::finite(6));
        assert!(oj[1].has_leaf);
    }

    #[test]
    fn outerjoin_k_keeps_ancestor_without_descendants() {
        let anc = vec![ke(1, 9, 0, 0, 0)];
        let oj = outerjoin_k(&anc, &vec![], Cost::ZERO, Cost::finite(4), 3);
        assert_eq!(oj.len(), 1);
        assert_eq!(oj[0].cost, Cost::finite(4));
        let oj = outerjoin_k(&anc, &vec![], Cost::ZERO, Cost::INFINITY, 3);
        assert!(oj.is_empty());
    }

    #[test]
    fn intersect_k_takes_best_pairs_and_unions_pointers() {
        let mut a1 = ke(2, 5, 0, 1, 0);
        a1.children = vec![Arc::new(Skeleton {
            pre: 3,
            label: LabelId(1),
            children: vec![],
        })];
        let mut b1 = ke(2, 5, 0, 2, 0);
        b1.children = vec![Arc::new(Skeleton {
            pre: 4,
            label: LabelId(2),
            children: vec![],
        })];
        let x = intersect_k(&vec![a1], &vec![b1], Cost::finite(1), 4);
        assert_eq!(x.len(), 1);
        assert_eq!(x[0].cost, Cost::finite(4));
        assert_eq!(x[0].children.len(), 2);
    }

    #[test]
    fn intersect_k_caps_pairs_at_k() {
        let l = vec![ke(2, 5, 0, 0, 0), ke(2, 5, 0, 1, 0)];
        let r = vec![ke(2, 5, 0, 0, 0), ke(2, 5, 0, 10, 0)];
        let x = intersect_k(&l, &r, Cost::ZERO, 3);
        assert_eq!(x.len(), 3);
        let costs: Vec<Cost> = x.iter().map(|e| e.cost).collect();
        assert_eq!(costs, vec![Cost::ZERO, Cost::finite(1), Cost::finite(10)]);
    }

    #[test]
    fn union_k_merges_segments() {
        let l = vec![ke(2, 5, 0, 3, 0)];
        let r = vec![ke(2, 5, 0, 1, 0), ke(7, 7, 0, 0, 0)];
        let u = union_k(&l, &r, Cost::ZERO, 1);
        // segment at 2 keeps only the cheaper entry; segment at 7 copied.
        assert_eq!(u.len(), 2);
        assert_eq!(u[0].cost, Cost::finite(1));
        assert_eq!(u[1].pre, 7);
    }

    #[test]
    fn merge_k_charges_renames_and_recaps() {
        let l = vec![ke(2, 5, 0, 0, 10)];
        let r = vec![ke(2, 5, 0, 0, 11), ke(3, 3, 0, 0, 11)];
        let m = merge_k(&l, &r, Cost::finite(2), 1);
        // shared segment at 2: original (0) beats renamed (2); k=1 keeps 1.
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].cost, Cost::ZERO);
        assert_eq!(m[0].label, LabelId(10));
        assert_eq!(m[1].pre, 3);
        assert_eq!(m[1].cost, Cost::finite(2));
        assert_eq!(m[1].label, LabelId(11));
    }

    #[test]
    fn sort_k_best_filters_and_orders() {
        let mut no_leaf = ke(5, 5, 0, 0, 0);
        no_leaf.has_leaf = false;
        let l = vec![ke(9, 9, 0, 2, 0), no_leaf, ke(1, 1, 0, 1, 0)];
        let best = sort_k_best(10, &l, true);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].pre, 1);
        assert_eq!(best[1].pre, 9);
        let best = sort_k_best(10, &l, false);
        assert_eq!(best.len(), 3);
        assert_eq!(best[0].pre, 5);
    }

    #[test]
    fn nested_ancestors_fold_candidates() {
        // outer(1..9) contains inner(2..5); descendant at 4 counts for
        // both, descendant at 7 only for the outer.
        let anc = vec![ke(1, 9, 0, 0, 0), ke(2, 5, 1, 0, 0)];
        let desc = vec![ke(4, 4, 2, 0, 1), ke(7, 7, 1, 0, 2)];
        let j = join_k(&anc, &desc, Cost::ZERO, 2);
        let outer: Vec<_> = j.iter().filter(|e| e.pre == 1).collect();
        let inner: Vec<_> = j.iter().filter(|e| e.pre == 2).collect();
        assert_eq!(outer.len(), 2);
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].children[0].pre, 4);
    }

    #[test]
    fn skeleton_size_counts_nodes() {
        let s = Skeleton {
            pre: 0,
            label: LabelId(0),
            children: vec![
                Arc::new(Skeleton {
                    pre: 1,
                    label: LabelId(1),
                    children: vec![],
                }),
                Arc::new(Skeleton {
                    pre: 2,
                    label: LabelId(2),
                    children: vec![],
                }),
            ],
        };
        assert_eq!(s.size(), 3);
    }
}
