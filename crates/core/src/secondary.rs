//! Algorithm `secondary` (Section 7.3, Figure 5): executing a second-level
//! query against the path-dependent secondary index.
//!
//! A second-level query is a [`Skeleton`]: schema nodes with the labels
//! their instances must carry, connected by ancestor–descendant edges of
//! *fixed* distance (all instance pairs of two schema nodes are the same
//! insert-cost distance apart — Section 7.1). Executing it therefore needs
//! no cost computation at all: fetch the instances of the root, and keep
//! those that have a descendant instance for every child skeleton.

use crate::topk::Skeleton;
use approxql_index::{InstancePosting, SecondaryIndex};

/// Keeps the ancestors that have at least one descendant in `descendants`.
///
/// Both lists are instance postings of schema nodes: preorder-sorted, and
/// non-nesting within each list (all instances of one schema node sit at
/// the same depth), so a single forward scan suffices.
fn semijoin(
    ancestors: Vec<InstancePosting>,
    descendants: &[InstancePosting],
) -> Vec<InstancePosting> {
    let mut out = Vec::with_capacity(ancestors.len());
    let mut j = 0;
    for a in ancestors {
        while j < descendants.len() && descendants[j].pre <= a.pre {
            j += 1;
        }
        if j < descendants.len() && descendants[j].pre <= a.bound {
            out.push(a);
        }
    }
    out
}

/// Finds all exact results of the second-level query `skeleton` — the
/// instances of its root whose subtrees contain instances of every child
/// skeleton (Figure 5).
pub fn execute(skeleton: &Skeleton, index: &SecondaryIndex) -> Vec<InstancePosting> {
    let mut ancestors = index.fetch(skeleton.pre, skeleton.label);
    for child in &skeleton.children {
        if ancestors.is_empty() {
            break;
        }
        let descendants = execute(child, index);
        ancestors = semijoin(ancestors, &descendants);
    }
    ancestors
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_tree::LabelId;
    use std::sync::Arc;

    fn ip(pre: u32, bound: u32) -> InstancePosting {
        InstancePosting { pre, bound }
    }

    fn skel(pre: u32, label: u32, children: Vec<Arc<Skeleton>>) -> Skeleton {
        Skeleton {
            pre,
            label: LabelId(label),
            children,
        }
    }

    #[test]
    fn semijoin_keeps_matching_ancestors() {
        let anc = vec![ip(1, 5), ip(10, 15), ip(20, 25)];
        let desc = vec![ip(3, 3), ip(22, 22)];
        let out = semijoin(anc, &desc);
        assert_eq!(out, vec![ip(1, 5), ip(20, 25)]);
    }

    #[test]
    fn semijoin_self_pre_does_not_count() {
        let anc = vec![ip(5, 9)];
        let desc = vec![ip(5, 9)];
        assert!(semijoin(anc, &desc).is_empty());
    }

    #[test]
    fn execute_leaf_skeleton_returns_all_instances() {
        let mut idx = SecondaryIndex::new();
        idx.push(2, LabelId(7), ip(4, 6));
        idx.push(2, LabelId(7), ip(9, 11));
        let s = skel(2, 7, vec![]);
        assert_eq!(execute(&s, &idx).len(), 2);
    }

    #[test]
    fn execute_filters_by_every_child() {
        // schema: node 2 (label 7) with children node 3 (label 8) and
        // node 5 (label 9). Instance 4 has both, instance 9 misses one.
        let mut idx = SecondaryIndex::new();
        idx.push(2, LabelId(7), ip(4, 8));
        idx.push(2, LabelId(7), ip(9, 13));
        idx.push(3, LabelId(8), ip(5, 5));
        idx.push(3, LabelId(8), ip(10, 10));
        idx.push(5, LabelId(9), ip(7, 7)); // only under instance 4
        let s = skel(
            2,
            7,
            vec![Arc::new(skel(3, 8, vec![])), Arc::new(skel(5, 9, vec![]))],
        );
        assert_eq!(execute(&s, &idx), vec![ip(4, 8)]);
    }

    #[test]
    fn execute_nested_skeleton() {
        // root (1) -> a (2) -> b (3); only the instance chain 10>12>13
        // is complete.
        let mut idx = SecondaryIndex::new();
        idx.push(1, LabelId(1), ip(10, 20));
        idx.push(1, LabelId(1), ip(30, 40));
        idx.push(2, LabelId(2), ip(12, 15));
        idx.push(2, LabelId(2), ip(32, 35));
        idx.push(3, LabelId(3), ip(13, 13));
        let s = skel(
            1,
            1,
            vec![Arc::new(skel(2, 2, vec![Arc::new(skel(3, 3, vec![]))]))],
        );
        assert_eq!(execute(&s, &idx), vec![ip(10, 20)]);
    }

    #[test]
    fn execute_unknown_key_is_empty() {
        let idx = SecondaryIndex::new();
        assert!(execute(&skel(1, 1, vec![]), &idx).is_empty());
    }
}
