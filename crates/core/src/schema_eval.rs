//! Schema-driven evaluation (Sections 7.2–7.4).
//!
//! The adapted algorithm `primary` runs against the *schema* indexes with
//! the segment-based top-k operations of [`crate::topk`], producing the
//! best `k` second-level queries. Algorithm `secondary` executes each of
//! them against the path-dependent index. The incremental driver
//! ([`best_n_schema`], Figure 6) grows `k` by `δ` until `n` results are
//! found or the second-level queries are exhausted.
//!
//! Because second-level queries are processed in increasing cost order and
//! all results of one second-level query share its (exact, Section 7.1)
//! cost, the first occurrence of each embedding root is its minimum cost —
//! the driver only needs to deduplicate roots.
//!
//! The adapted `primary` executes the same compiled physical plan as the
//! direct evaluation (see [`approxql_plan`]): only the algebra backend
//! differs — segment-based top-k operations where `k` is a runtime
//! parameter, so one compiled plan serves every incremental round.

use crate::direct::EvalOptions;
use crate::secondary;
use crate::topk::{self, KEntry, KList};
use approxql_exec::Executor;
use approxql_index::{InstancePosting, LabelIndex};
use approxql_metrics::{time, Metric, MetricsSnapshot, TimerMetric};
use approxql_plan::{self as plan, Plan, PlanAlgebra, PlanOp};
use approxql_query::expand::{ExpandedNode, ExpandedQuery};
use approxql_schema::Schema;
use approxql_tree::{Cost, Interner, NodeType};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tuning knobs of the incremental driver.
#[derive(Debug, Clone, Copy)]
pub struct SchemaEvalConfig {
    /// Initial `k` (number of second-level queries of the first round).
    /// `None` derives it from `n` (the paper: "a good initial guess of k
    /// is crucial").
    pub initial_k: Option<usize>,
    /// Increment `δ` added to `k` when the current queries did not yield
    /// `n` results. `None` doubles `k` instead (geometric growth keeps the
    /// number of re-runs logarithmic; the paper's driver uses a fixed δ).
    pub delta: Option<usize>,
    /// Hard upper bound on `k`, `usize::MAX` (no bound) by default.
    ///
    /// Second-level queries are combinatorial in the number of renamings
    /// and deletions (a Boolean query with 10 renamings per label can have
    /// *millions*, many of which retrieve nothing — "not every included
    /// schema tree is a tree class"), and whenever `n` exceeds the total
    /// number of results the driver must exhaust them all to learn that
    /// nothing is left. Setting a ceiling turns the evaluation into a
    /// bounded best-effort search: results beyond the `max_k` cheapest
    /// second-level queries are silently missing. The paper itself
    /// recommends the direct evaluation when `n` is close to the total
    /// number of results.
    pub max_k: usize,
}

impl Default for SchemaEvalConfig {
    fn default() -> Self {
        SchemaEvalConfig {
            initial_k: None,
            delta: None,
            max_k: usize::MAX,
        }
    }
}

/// Counters describing one schema-driven evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Rounds of the incremental loop (primary re-runs).
    pub rounds: usize,
    /// Final `k` used.
    pub k_final: usize,
    /// Second-level queries executed against the data.
    pub second_level_queries: usize,
    /// Total instances returned by all `secondary` executions.
    pub secondary_rows: usize,
    /// Total entries produced by the top-k list operations (all rounds).
    pub primary_entries: usize,
    /// Index fetches (all rounds).
    pub fetches: usize,
}

/// The Section 7.2 top-k algebra over the schema's label index: the
/// backend the compiled plan executes against for the adapted `primary`.
/// `k` is a runtime parameter of every operation, so the same compiled
/// plan is reused across incremental driver rounds.
struct SchemaAlgebra<'a> {
    index: &'a LabelIndex,
    interner: &'a Interner,
    k: usize,
    fetches: AtomicUsize,
}

impl PlanAlgebra for SchemaAlgebra<'_> {
    type L = KList;

    fn empty(&self) -> KList {
        Vec::new()
    }

    fn fetch(&self, label: &str, ty: NodeType, is_leaf: bool) -> KList {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        match self.interner.get(label) {
            Some(id) => topk::fetch_k(self.index, ty, id, is_leaf),
            None => Vec::new(),
        }
    }

    fn shift(&self, l: &KList, cost: Cost) -> KList {
        topk::shift_k(l.clone(), cost)
    }

    fn merge(&self, l: &KList, r: &KList, c_ren: Cost) -> KList {
        topk::merge_k(l, r, c_ren, self.k)
    }

    fn join(&self, anc: &KList, desc: &KList) -> KList {
        topk::join_k(anc, desc, Cost::ZERO, self.k)
    }

    fn outerjoin(&self, anc: &KList, desc: &KList, delcost: Cost) -> KList {
        topk::outerjoin_k(anc, desc, Cost::ZERO, delcost, self.k)
    }

    fn intersect(&self, l: &KList, r: &KList) -> KList {
        topk::intersect_k(l, r, Cost::ZERO, self.k)
    }

    fn union(&self, l: &KList, r: &KList) -> KList {
        topk::union_k(l, r, Cost::ZERO, self.k)
    }

    fn len(l: &KList) -> usize {
        l.len()
    }
}

/// Whether an operator's output takes part in the entry/cap accounting.
/// Leaf fetches and the intermediate merge/shift lists are building
/// blocks whose content reappears in their consumer; counting the
/// materialized candidate lists and combination results matches the
/// completeness argument: a truncation can only originate in an operator
/// that applies the per-segment cap to a combined list.
fn counts_toward_entries(op: &PlanOp) -> bool {
    match op {
        PlanOp::Fetch { is_leaf, .. } => !is_leaf,
        PlanOp::Join { .. }
        | PlanOp::OuterJoin { .. }
        | PlanOp::Intersect { .. }
        | PlanOp::Union { .. } => true,
        PlanOp::Merge { .. } | PlanOp::Shift { .. } | PlanOp::SortBest { .. } => false,
    }
}

/// The outcome of one adapted-`primary` run against the schema.
pub struct SecondLevelRun {
    /// The best `k` second-level queries, cost-sorted.
    pub queries: Vec<KEntry>,
    /// Entries produced by the top-k list operations.
    pub entries: usize,
    /// Index fetches performed.
    pub fetches: usize,
    /// `true` iff the enumeration is provably complete: no segment hit the
    /// per-segment cap and the root list was not truncated, so a larger
    /// `k` cannot produce additional second-level queries.
    pub complete: bool,
}

/// Runs the adapted `primary` against the schema, returning the best `k`
/// second-level queries (root entries of the flattened, cost-sorted list).
///
/// Compiles the expanded query on the spot; driver rounds and cache-hit
/// paths use [`best_k_second_level_plan`] with a shared compiled plan. An
/// expanded query whose root is not a selector cannot be produced by the
/// parser and yields a (provably complete) empty run.
pub fn best_k_second_level(
    expanded: &ExpandedQuery,
    schema: &Schema,
    interner: &Interner,
    k: usize,
    opts: EvalOptions,
) -> SecondLevelRun {
    match plan::compile(expanded) {
        Ok(p) => best_k_second_level_plan(&p, schema, interner, k, opts),
        Err(_) => SecondLevelRun {
            queries: Vec::new(),
            entries: 0,
            fetches: 0,
            complete: true,
        },
    }
}

/// [`best_k_second_level`] over a pre-compiled plan.
pub fn best_k_second_level_plan(
    plan: &Plan,
    schema: &Schema,
    interner: &Interner,
    k: usize,
    opts: EvalOptions,
) -> SecondLevelRun {
    Metric::EvalSchemaRuns.incr();
    let _timer = time(TimerMetric::EvalSchema);
    let alg = SchemaAlgebra {
        index: schema.labels(),
        interner,
        k,
        fetches: AtomicUsize::new(0),
    };
    let slots = plan::execute(plan, &alg, opts.threads);
    let mut entries = 0usize;
    // `possibly_capped`: whether any accounted segment reached length `k`
    // — a conservative signal that the per-segment cap may have truncated
    // embeddings. If it never fires, the enumeration is provably complete
    // at this `k`.
    let mut possibly_capped = false;
    for (h, op) in plan.ops().iter().enumerate() {
        if !counts_toward_entries(op) {
            continue;
        }
        if let Some(list) = slots.get(h).and_then(|s| s.get()) {
            entries += list.len();
            if !possibly_capped {
                possibly_capped = topk::segments(list).any(|s| s.len() >= k);
            }
        }
    }
    let root_list = slots
        .get(plan.root_list())
        .and_then(|s| s.get())
        .cloned()
        .unwrap_or_default();
    entries += root_list.len();
    let best = topk::sort_k_best(k, &root_list, opts.enforce_leaf_match);
    let complete = !possibly_capped && best.len() < k;
    SecondLevelRun {
        queries: best,
        entries,
        fetches: alg.fetches.load(Ordering::Relaxed),
        complete,
    }
}

/// Structural identity of a skeleton (for deduplicating second-level
/// queries across incremental rounds without relying on list order).
fn skeleton_key(s: &topk::Skeleton, out: &mut Vec<u32>) {
    out.push(s.pre);
    out.push(s.label.0);
    out.push(s.children.len() as u32);
    for c in &s.children {
        skeleton_key(c, out);
    }
}

fn entry_key(e: &KEntry) -> Vec<u32> {
    let mut key = Vec::with_capacity(8);
    skeleton_key(&e.skeleton(), &mut key);
    key
}

/// Number of data nodes that can possibly be an embedding root: the
/// instances of every schema node carrying the query root's label or one
/// of its renamings. Once that many distinct roots have been retrieved,
/// no further second-level query can contribute — an early exit the
/// paper's driver does not have (it changes no results, only time).
fn possible_roots(expanded: &ExpandedQuery, schema: &Schema, interner: &Interner) -> usize {
    let (label, ty, renamings) = match &expanded.nodes[expanded.root] {
        ExpandedNode::Leaf {
            label,
            ty,
            renamings,
            ..
        }
        | ExpandedNode::Node {
            label,
            ty,
            renamings,
            ..
        } => (label, *ty, renamings),
        _ => return usize::MAX,
    };
    let mut total = 0usize;
    for l in std::iter::once(label.as_str()).chain(renamings.iter().map(|(l, _)| l.as_str())) {
        if let Some(id) = interner.get(l) {
            for posting in schema.labels().fetch(ty, id) {
                total += schema.secondary().fetch(posting.pre, id).len();
            }
        }
    }
    total
}

/// A lazy stream of root–cost pairs in nondecreasing cost order — the
/// incremental retrieval the paper highlights as an advantage of the
/// schema-driven approach ("the results can be sent immediately to the
/// user", Section 9).
///
/// The stream compiles its query once and drives the Figure 6 loop on
/// demand: second-level queries are generated in batches of `k` and
/// executed one by one as the consumer pulls results; `k` grows (by `δ`
/// or doubling) only when the current batch runs dry.
pub struct ResultStream<'a> {
    /// The compiled plan shared by all driver rounds (`k` is a runtime
    /// parameter of the top-k algebra, not a plan constant). `None` when
    /// the expanded query does not compile: the stream is empty.
    plan: Option<Arc<Plan>>,
    schema: &'a Schema,
    interner: &'a Interner,
    opts: EvalOptions,
    cfg: SchemaEvalConfig,
    k: usize,
    queries: Vec<KEntry>,
    pos: usize,
    last_run_complete: bool,
    started: bool,
    done: bool,
    prev_len: usize,
    executed: HashSet<Vec<u32>>,
    seen_roots: HashSet<u32>,
    pending: std::collections::VecDeque<(u32, Cost)>,
    /// At `threads > 1`: speculatively executed secondary results for the
    /// remaining entries of the current batch, front-aligned with `pos`.
    /// Each carries the metrics delta its worker recorded; the delta is
    /// absorbed only if the sequential driver would have executed that
    /// query (duplicates and post-exit work are discarded), keeping the
    /// merged counters identical to a 1-thread run.
    speculative: std::collections::VecDeque<(Vec<InstancePosting>, MetricsSnapshot)>,
    max_roots: usize,
    stats: EvalStats,
}

impl<'a> ResultStream<'a> {
    /// Creates a stream. When `cfg.initial_k` is `None`, the first batch
    /// size defaults to 16 (the stream cannot know the consumer's `n`).
    pub fn new(
        expanded: &ExpandedQuery,
        schema: &'a Schema,
        interner: &'a Interner,
        opts: EvalOptions,
        cfg: SchemaEvalConfig,
    ) -> ResultStream<'a> {
        let plan = plan::compile(expanded).ok().map(Arc::new);
        Self::with_plan(expanded, plan, schema, interner, opts, cfg)
    }

    /// Creates a stream over a pre-compiled plan (the `Database`
    /// plan-cache path). `plan` must be compiled from `expanded`; `None`
    /// yields an empty stream.
    pub fn with_plan(
        expanded: &ExpandedQuery,
        plan: Option<Arc<Plan>>,
        schema: &'a Schema,
        interner: &'a Interner,
        opts: EvalOptions,
        cfg: SchemaEvalConfig,
    ) -> ResultStream<'a> {
        let k = cfg.initial_k.unwrap_or(16).min(cfg.max_k).max(1);
        let max_roots = possible_roots(expanded, schema, interner);
        ResultStream {
            plan,
            schema,
            interner,
            opts,
            cfg,
            k,
            queries: Vec::new(),
            pos: 0,
            last_run_complete: false,
            started: false,
            done: false,
            prev_len: usize::MAX,
            executed: HashSet::new(),
            seen_roots: HashSet::new(),
            pending: std::collections::VecDeque::new(),
            speculative: std::collections::VecDeque::new(),
            max_roots,
            stats: EvalStats::default(),
        }
    }

    /// Evaluation counters accumulated so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Runs (or re-runs) the adapted primary at the current `k`, reusing
    /// the plan compiled once at stream construction.
    fn refill(&mut self) {
        let Some(plan) = self.plan.clone() else {
            self.queries.clear();
            self.started = true;
            self.done = true;
            return;
        };
        self.stats.rounds += 1;
        Metric::EvalSchemaRounds.incr();
        self.stats.k_final = self.k;
        let run = best_k_second_level_plan(&plan, self.schema, self.interner, self.k, self.opts);
        self.stats.primary_entries += run.entries;
        self.stats.fetches += run.fetches;
        self.queries = run.queries;
        self.last_run_complete = run.complete;
        self.pos = 0;
        self.started = true;
        self.speculative.clear();
    }

    /// Executes every remaining second-level query of the current batch in
    /// parallel (the queries are independent by construction — each
    /// skeleton probes the secondary index read-only), queuing the result
    /// lists for the sequential replay in [`Iterator::next`]. Only used
    /// at `threads > 1`.
    fn speculate(&mut self) {
        let remaining: Vec<KEntry> = self.queries[self.pos..].to_vec();
        let schema = self.schema;
        self.speculative = Executor::new(self.opts.threads)
            .scope(|scope| {
                scope.map_deferred(remaining, move |entry: KEntry| {
                    let skel = entry.skeleton();
                    let _timer = time(TimerMetric::SecondLevel);
                    secondary::execute(&skel, schema.secondary())
                })
            })
            .into();
    }

    /// Advances past the current batch: either declare exhaustion or grow
    /// `k` and refill.
    fn advance_k(&mut self) {
        // Exhausted? Either provably (nothing was capped at this k), or
        // heuristically (the flattened root list stopped growing), or the
        // configured ceiling was reached.
        if self.last_run_complete
            || (self.queries.len() < self.k && self.queries.len() == self.prev_len)
            || self.k >= self.cfg.max_k
        {
            self.done = true;
            return;
        }
        self.prev_len = self.queries.len();
        self.k = match self.cfg.delta {
            Some(delta) => self.k.saturating_add(delta),
            None => self.k.saturating_mul(2),
        }
        .min(self.cfg.max_k);
        self.refill();
    }
}

impl Iterator for ResultStream<'_> {
    type Item = (u32, Cost);

    fn next(&mut self) -> Option<(u32, Cost)> {
        loop {
            if let Some(r) = self.pending.pop_front() {
                return Some(r);
            }
            if self.done {
                return None;
            }
            if !self.started {
                self.refill();
                continue;
            }
            if self.pos >= self.queries.len() {
                self.advance_k();
                continue;
            }
            if self.opts.threads > 1 && self.speculative.is_empty() {
                self.speculate();
            }
            let entry = self.queries[self.pos].clone();
            self.pos += 1;
            let spec = self.speculative.pop_front();
            if !self.executed.insert(entry_key(&entry)) {
                // Evaluated in an earlier round: a sequential driver skips
                // it, so any speculative work (and its delta) is dropped.
                continue;
            }
            self.stats.second_level_queries += 1;
            Metric::EvalSecondLevelQueries.incr();
            let instances = match spec {
                Some((instances, delta)) => {
                    approxql_metrics::absorb(&delta);
                    instances
                }
                None => {
                    let skel = entry.skeleton();
                    let _timer = time(TimerMetric::SecondLevel);
                    secondary::execute(&skel, self.schema.secondary())
                }
            };
            self.stats.secondary_rows += instances.len();
            Metric::EvalSecondaryRows.add(instances.len() as u64);
            for inst in instances {
                if self.seen_roots.insert(inst.pre) {
                    self.pending.push_back((inst.pre, entry.cost));
                }
            }
            // Once every possible root has been seen, nothing further can
            // contribute (an early exit the paper's driver does not have).
            if self.seen_roots.len() >= self.max_roots {
                self.done = true;
            }
        }
    }
}

/// The incremental best-n algorithm (Section 7.4, Figure 6), built on
/// [`ResultStream`].
///
/// Returns the best `n` root–cost pairs (sorted by cost, ties by preorder)
/// and the evaluation counters. Second-level queries are executed in
/// nondecreasing cost order, so the first `n` distinct roots are the
/// best `n`.
pub fn best_n_schema(
    expanded: &ExpandedQuery,
    schema: &Schema,
    interner: &Interner,
    n: usize,
    opts: EvalOptions,
    cfg: SchemaEvalConfig,
) -> (Vec<(u32, Cost)>, EvalStats) {
    let plan = plan::compile(expanded).ok().map(Arc::new);
    best_n_schema_with_plan(expanded, plan, schema, interner, n, opts, cfg)
}

/// [`best_n_schema`] over a pre-compiled plan (the `Database` plan-cache
/// path); `plan` must be compiled from `expanded`.
pub fn best_n_schema_with_plan(
    expanded: &ExpandedQuery,
    plan: Option<Arc<Plan>>,
    schema: &Schema,
    interner: &Interner,
    n: usize,
    opts: EvalOptions,
    cfg: SchemaEvalConfig,
) -> (Vec<(u32, Cost)>, EvalStats) {
    if n == 0 {
        return (Vec::new(), EvalStats::default());
    }
    let cfg = SchemaEvalConfig {
        initial_k: Some(cfg.initial_k.unwrap_or_else(|| (2 * n.min(1 << 20)).max(8))),
        ..cfg
    };
    let mut stream = ResultStream::with_plan(expanded, plan, schema, interner, opts, cfg);
    let mut results: Vec<(u32, Cost)> = Vec::with_capacity(n.min(1024));
    for pair in stream.by_ref() {
        results.push(pair);
        if results.len() >= n {
            break;
        }
    }
    results.sort_by_key(|&(pre, c)| (c, pre));
    (results, stream.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_cost::tables::paper_section6_costs;
    use approxql_cost::CostModel;
    use approxql_query::parse_query;
    use approxql_tree::{DataTree, DataTreeBuilder};

    fn catalog(costs: &CostModel) -> DataTree {
        let mut b = DataTreeBuilder::new();
        b.begin_struct("cd"); // 1
        b.begin_struct("title"); // 2
        b.add_text("piano concerto");
        b.end();
        b.begin_struct("composer"); // 5
        b.add_text("rachmaninov");
        b.end();
        b.end();
        b.begin_struct("cd"); // 7
        b.begin_struct("title"); // 8
        b.add_text("kinderszenen");
        b.end();
        b.begin_struct("tracks"); // 10
        b.begin_struct("track"); // 11
        b.begin_struct("title"); // 12
        b.add_text("vivace piano");
        b.end();
        b.end();
        b.end();
        b.end();
        b.build(costs)
    }

    fn schema_hits(query: &str, costs: &CostModel, tree: &DataTree, n: usize) -> Vec<(u32, Cost)> {
        let q = parse_query(query).unwrap();
        let ex = approxql_query::expand::ExpandedQuery::build(&q, costs);
        let schema = Schema::build(tree, costs);
        best_n_schema(
            &ex,
            &schema,
            tree.interner(),
            n,
            EvalOptions::default(),
            SchemaEvalConfig::default(),
        )
        .0
    }

    #[test]
    fn exact_match_found_via_schema() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = schema_hits(
            r#"cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#,
            &costs,
            &tree,
            1,
        );
        assert_eq!(hits, vec![(1, Cost::ZERO)]);
    }

    #[test]
    fn schema_matches_direct_on_the_catalog() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let index = LabelIndex::build(&tree);
        for query in [
            r#"cd[title["piano"]]"#,
            r#"cd[title["piano" and "concerto"]]"#,
            r#"cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]]"#,
            r#"cd[title["concerto" or "kinderszenen"]]"#,
            "cd[tracks]",
            "cd",
        ] {
            let q = parse_query(query).unwrap();
            let ex = approxql_query::expand::ExpandedQuery::build(&q, &costs);
            let (direct, _) =
                crate::direct::best_n(&ex, &index, tree.interner(), None, EvalOptions::default());
            let schema = Schema::build(&tree, &costs);
            let (via_schema, _) = best_n_schema(
                &ex,
                &schema,
                tree.interner(),
                direct.len().max(1),
                EvalOptions::default(),
                SchemaEvalConfig::default(),
            );
            assert_eq!(via_schema, direct, "mismatch for {query}");
        }
    }

    #[test]
    fn incremental_growth_when_k_too_small() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let q = parse_query(r#"cd[title["piano"]]"#).unwrap();
        let ex = approxql_query::expand::ExpandedQuery::build(&q, &costs);
        let schema = Schema::build(&tree, &costs);
        let cfg = SchemaEvalConfig {
            initial_k: Some(1),
            delta: Some(1),
            max_k: usize::MAX,
        };
        let (hits, stats) = best_n_schema(
            &ex,
            &schema,
            tree.interner(),
            2,
            EvalOptions::default(),
            cfg,
        );
        assert_eq!(hits.len(), 2);
        assert!(stats.rounds > 1, "expected multiple rounds, got {stats:?}");
    }

    #[test]
    fn n_zero_returns_nothing() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = schema_hits("cd", &costs, &tree, 0);
        assert!(hits.is_empty());
    }

    #[test]
    fn termination_when_fewer_results_than_n() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        // Only two cds exist; ask for 50.
        let hits = schema_hits("cd", &costs, &tree, 50);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn no_results_for_unknown_labels() {
        let costs = CostModel::new();
        let tree = catalog(&costs);
        assert!(schema_hits(r#"zzz["nothing"]"#, &costs, &tree, 5).is_empty());
    }

    #[test]
    fn second_level_queries_are_sorted_by_cost() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let q = parse_query(r#"cd[title["piano"]]"#).unwrap();
        let ex = approxql_query::expand::ExpandedQuery::build(&q, &costs);
        let schema = Schema::build(&tree, &costs);
        let queries =
            best_k_second_level(&ex, &schema, tree.interner(), 10, EvalOptions::default()).queries;
        assert!(!queries.is_empty());
        assert!(queries.windows(2).all(|w| w[0].cost <= w[1].cost));
        // The cheapest second-level query is the exact one (cost 0).
        assert_eq!(queries[0].cost, Cost::ZERO);
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use approxql_cost::tables::paper_section6_costs;
    use approxql_query::parse_query;
    use approxql_tree::DataTreeBuilder;

    #[test]
    fn stream_yields_results_in_cost_order_and_matches_batch() {
        let costs = paper_section6_costs();
        let mut b = DataTreeBuilder::new();
        for (title, extra) in [
            ("piano concerto", true),
            ("kinderszenen", false),
            ("piano sonata", false),
        ] {
            b.begin_struct("cd");
            b.begin_struct("title");
            b.add_text(title);
            b.end();
            if extra {
                b.begin_struct("composer");
                b.add_text("rachmaninov");
                b.end();
            }
            b.end();
        }
        let tree = b.build(&costs);
        let schema = Schema::build(&tree, &costs);
        let q = parse_query(r#"cd[title["piano" and "concerto"]]"#).unwrap();
        let ex = approxql_query::expand::ExpandedQuery::build(&q, &costs);

        let stream = ResultStream::new(
            &ex,
            &schema,
            tree.interner(),
            EvalOptions::default(),
            SchemaEvalConfig::default(),
        );
        let streamed: Vec<(u32, Cost)> = stream.collect();
        assert!(!streamed.is_empty());
        assert!(
            streamed.windows(2).all(|w| w[0].1 <= w[1].1),
            "stream not cost-ordered: {streamed:?}"
        );
        // Collecting everything equals the batch driver asked for "all".
        let (batch, _) = best_n_schema(
            &ex,
            &schema,
            tree.interner(),
            usize::MAX,
            EvalOptions::default(),
            SchemaEvalConfig::default(),
        );
        let mut sorted = streamed.clone();
        sorted.sort_by_key(|&(pre, c)| (c, pre));
        assert_eq!(sorted, batch);
    }

    #[test]
    fn stream_is_lazy_about_k() {
        let costs = paper_section6_costs();
        let mut b = DataTreeBuilder::new();
        for _ in 0..5 {
            b.begin_struct("cd");
            b.begin_struct("title");
            b.add_text("piano");
            b.end();
            b.end();
        }
        let tree = b.build(&costs);
        let schema = Schema::build(&tree, &costs);
        let q = parse_query(r#"cd[title["piano"]]"#).unwrap();
        let ex = approxql_query::expand::ExpandedQuery::build(&q, &costs);
        let mut stream = ResultStream::new(
            &ex,
            &schema,
            tree.interner(),
            EvalOptions::default(),
            SchemaEvalConfig {
                initial_k: Some(1),
                delta: Some(1),
                ..Default::default()
            },
        );
        // The first result must arrive after a single round with k = 1.
        let first = stream.next().unwrap();
        assert_eq!(first.1, Cost::ZERO);
        assert_eq!(stream.stats().rounds, 1);
        assert_eq!(stream.stats().k_final, 1);
        // Draining pulls the rest without recomputing per result.
        let rest: Vec<_> = stream.by_ref().collect();
        assert_eq!(rest.len(), 4);
    }
}
