//! The list algebra of Sections 6.3 and 6.4.
//!
//! A [`List`] is a sequence of [`Entry`]s sorted by strictly increasing
//! preorder number. Each entry copies the four encoding numbers of its data
//! (or schema) node and carries the two embedding-cost channels (see the
//! crate docs for the leaf rule).
//!
//! The `join`/`outerjoin` operations are *structural merges*: both operand
//! lists are preorder-sorted, so the descendants of each ancestor form a
//! contiguous interval. A stack of currently open ancestors is maintained;
//! each descendant updates only the innermost open ancestor, and an
//! ancestor's accumulated minimum is folded into the enclosing one when it
//! closes. This makes the join O(|A| + |D|) amortised — the paper's
//! O(s·l) bound is a safe upper bound for the same scheme (an
//! intentionally literal O(s·l) variant is kept in
//! [`join_paper`]/[`outerjoin_paper`] for the ablation benchmark).

use approxql_index::codec::{BlockList, BLOCK_SIZE};
use approxql_index::{LabelIndex, Posting};
use approxql_metrics::Metric;
use approxql_tree::{Cost, LabelId, NodeType};
use std::borrow::Cow;

/// A list entry (Section 6.3): the four node numbers plus the two
/// embedding-cost channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Preorder number of the node.
    pub pre: u32,
    /// Bound (largest preorder number in the node's subtree).
    pub bound: u32,
    /// Sum of ancestor insert costs.
    pub pathcost: Cost,
    /// Insert cost of the node itself.
    pub inscost: Cost,
    /// Best embedding cost of the query subtree below this node.
    pub cost_any: Cost,
    /// Best embedding cost among embeddings matching ≥ 1 original leaf.
    pub cost_leaf: Cost,
}

/// A preorder-sorted list of entries (strictly increasing `pre`).
pub type List = Vec<Entry>;

#[cfg(debug_assertions)]
fn debug_check_sorted(l: &List) {
    debug_assert!(
        l.windows(2).all(|w| w[0].pre < w[1].pre),
        "list entries must have strictly increasing preorder numbers"
    );
}

#[cfg(not(debug_assertions))]
fn debug_check_sorted(_: &List) {}

/// `fetch` (Section 6.4): initializes a list from an index posting.
///
/// Counts one invocation of `op` plus the entries its output carries.
fn record_op(op: Metric, out: List) -> List {
    op.incr();
    record_entries(out)
}

fn record_entries(out: List) -> List {
    Metric::ListEntriesProduced.add(out.len() as u64);
    out
}

fn posting_entry(p: &Posting, is_leaf: bool) -> Entry {
    Entry {
        pre: p.pre,
        bound: p.bound,
        pathcost: p.pathcost,
        inscost: p.inscost,
        cost_any: Cost::ZERO,
        cost_leaf: if is_leaf { Cost::ZERO } else { Cost::INFINITY },
    }
}

/// For leaf selectors the matched node *is* an original query leaf, so
/// both cost channels start at zero; for inner selectors the entries serve
/// as ancestor candidates whose costs are computed by the child evaluation,
/// and the leaf channel starts at infinity.
pub fn fetch(index: &LabelIndex, ty: NodeType, label: LabelId, is_leaf: bool) -> List {
    let out: List = index
        .fetch(ty, label)
        .iter()
        .map(|p: &Posting| posting_entry(p, is_leaf))
        .collect();
    record_op(Metric::ListFetchOps, out)
}

/// [`fetch`] without decoding: hands the compressed frames to the lazy
/// operators so joins and intersections can skip whole blocks via the
/// skip headers. Records the same `list.*` counters as [`fetch`] (the
/// logical entry count is known from the headers).
pub fn fetch_lazy<'a>(
    index: &'a LabelIndex,
    ty: NodeType,
    label: LabelId,
    is_leaf: bool,
) -> LazyList<'a> {
    let blocks = index.fetch_blocks(ty, label);
    Metric::ListFetchOps.incr();
    Metric::ListEntriesProduced.add(blocks.entry_count() as u64);
    LazyList::Blocks { blocks, is_leaf }
}

/// A list that is either materialized or still sitting in compressed
/// frames (a fetched posting list that no operator has decoded yet).
///
/// The lazy operators ([`join_lazy`], [`outerjoin_lazy`],
/// [`intersect_lazy`]) consult the skip headers of a `Blocks` operand and
/// decode only the frames that can contribute output; everything else
/// falls back to [`LazyList::force`] + the materialized operators.
/// Outputs and every `index.*`/`list.*` counter are identical to running
/// the materialized operators on fully decoded lists — only the
/// `postings.*` decode/skip traffic differs.
#[derive(Debug, Clone)]
pub enum LazyList<'a> {
    /// A compressed posting list straight from the label index.
    Blocks {
        /// The compressed frames.
        blocks: &'a BlockList,
        /// Leaf-rule channel initialization for decoded entries.
        is_leaf: bool,
    },
    /// A materialized list (every operator output).
    Mat(List),
}

impl LazyList<'_> {
    /// Logical entry count (from the skip headers when compressed).
    pub fn len(&self) -> usize {
        match self {
            LazyList::Blocks { blocks, .. } => blocks.entry_count(),
            LazyList::Mat(l) => l.len(),
        }
    }

    /// True when the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The materialized list: borrows a `Mat`, decodes all frames of a
    /// `Blocks`.
    pub fn force(&self) -> Cow<'_, List> {
        match self {
            LazyList::Blocks { blocks, is_leaf } => {
                Cow::Owned(decode_frames(blocks, *is_leaf, |_| true))
            }
            LazyList::Mat(l) => Cow::Borrowed(l),
        }
    }
}

/// Decodes the frames of `blocks` selected by `keep` (a predicate over
/// frame indices) into entries; rejected frames count as skipped.
fn decode_frames(blocks: &BlockList, is_leaf: bool, mut keep: impl FnMut(usize) -> bool) -> List {
    let mut out = Vec::new();
    let mut buf: Vec<Posting> = Vec::with_capacity(BLOCK_SIZE);
    for i in 0..blocks.headers().len() {
        if !keep(i) {
            BlockList::record_skip();
            continue;
        }
        buf.clear();
        blocks.decode_block_into(i, &mut buf);
        out.extend(buf.iter().map(|p| posting_entry(p, is_leaf)));
    }
    out
}

/// Adds `c` to both cost channels of every entry (the deferred `c_edge`).
pub fn shift(mut l: List, c: Cost) -> List {
    Metric::ListShiftOps.incr();
    if c != Cost::ZERO {
        for e in &mut l {
            e.cost_any += c;
            e.cost_leaf += c;
        }
    }
    l
}

/// `merge` (Section 6.4): combines the lists of an original label and one
/// of its renamings; entries from `right` pay the rename cost `c_ren`.
/// Entries are interleaved to keep the preorder sorting; equal preorder
/// numbers keep the cheaper channel values (relevant only for the schema
/// variant where two words share a text class — disjoint for data lists).
pub fn merge(left: &List, right: &List, c_ren: Cost) -> List {
    debug_check_sorted(left);
    debug_check_sorted(right);
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0, 0);
    while i < left.len() || j < right.len() {
        let take_left = match (left.get(i), right.get(j)) {
            (Some(a), Some(b)) => a.pre <= b.pre,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_left {
            let a = left[i];
            i += 1;
            if j < right.len() && right[j].pre == a.pre {
                let mut b = right[j];
                j += 1;
                b.cost_any += c_ren;
                b.cost_leaf += c_ren;
                out.push(Entry {
                    cost_any: a.cost_any.min(b.cost_any),
                    cost_leaf: a.cost_leaf.min(b.cost_leaf),
                    ..a
                });
            } else {
                out.push(a);
            }
        } else {
            let mut b = right[j];
            j += 1;
            b.cost_any += c_ren;
            b.cost_leaf += c_ren;
            out.push(b);
        }
    }
    record_op(Metric::ListMergeOps, out)
}

/// Shared machinery of `join` and `outerjoin`: for every ancestor in
/// `ancestors`, the minimum over its descendant interval of
/// `pathcost(d) + cost(d)` is computed per channel (a later subtraction of
/// `pathcost(a) + inscost(a)` turns it into `distance(a, d) + cost(d)`).
///
/// Returns one `(min_any_key, min_leaf_key)` pair per ancestor
/// ([`Cost::INFINITY`] when the interval is empty on that channel).
fn interval_minima(ancestors: &List, descendants: &List) -> Vec<(Cost, Cost)> {
    debug_check_sorted(ancestors);
    debug_check_sorted(descendants);
    let mut result = vec![(Cost::INFINITY, Cost::INFINITY); ancestors.len()];
    // Stack of open ancestors: (index, min_any_key, min_leaf_key).
    let mut stack: Vec<(usize, Cost, Cost)> = Vec::new();
    let (mut i, mut j) = (0, 0);

    // Close every open ancestor whose interval ends before `pre`.
    macro_rules! close_until {
        ($pre:expr) => {
            while let Some(&(top, any, leaf)) = stack.last() {
                if ancestors[top].bound >= $pre {
                    break;
                }
                stack.pop();
                result[top] = (any, leaf);
                if let Some(parent) = stack.last_mut() {
                    // The enclosing ancestor's interval contains everything
                    // the closed one saw: fold the minima upward.
                    parent.1 = parent.1.min(any);
                    parent.2 = parent.2.min(leaf);
                }
            }
        };
    }

    while i < ancestors.len() || j < descendants.len() {
        // On equal preorder numbers the descendant is processed first: a
        // node is not its own descendant, so it must not land in the
        // interval of an equal-pre ancestor (which is the same node).
        let descendant_turn = match (ancestors.get(i), descendants.get(j)) {
            (Some(a), Some(d)) => d.pre <= a.pre,
            (None, Some(_)) => true,
            _ => false,
        };
        if descendant_turn {
            let d = descendants[j];
            j += 1;
            close_until!(d.pre);
            if let Some(top) = stack.last_mut() {
                if ancestors[top.0].pre < d.pre {
                    top.1 = top.1.min(d.pathcost + d.cost_any);
                    top.2 = top.2.min(d.pathcost + d.cost_leaf);
                }
            }
        } else {
            let a = ancestors[i];
            close_until!(a.pre);
            stack.push((i, Cost::INFINITY, Cost::INFINITY));
            i += 1;
        }
    }
    close_until!(u32::MAX);
    result
}

fn finish_costs(a: &Entry, key: Cost) -> Cost {
    match key.value() {
        None => Cost::INFINITY,
        Some(_) => {
            let c = key
                .checked_sub(a.pathcost)
                .and_then(|c| c.checked_sub(a.inscost));
            debug_assert!(
                c.is_some(),
                "descendant pathcost covers ancestor pathcost + inscost"
            );
            // In release, an underflow (impossible by the interval-minima
            // invariant) degrades to an infinite cost, which the caller
            // drops, instead of a panic.
            c.unwrap_or(Cost::INFINITY)
        }
    }
}

/// Shared output loop of [`join`] and [`outerjoin`]: `join` is exactly
/// `outerjoin` with an infinite deletion cost (`.min(Cost::INFINITY)` is
/// the identity), so one core serves both.
fn join_core(ancestors: &List, descendants: &List, c_edge: Cost, c_del: Cost) -> List {
    let minima = interval_minima(ancestors, descendants);
    let mut out = Vec::new();
    for (a, (min_any, min_leaf)) in ancestors.iter().zip(minima) {
        let cost_any = finish_costs(a, min_any).min(c_del) + c_edge;
        if !cost_any.is_finite() {
            continue;
        }
        out.push(Entry {
            cost_any,
            cost_leaf: finish_costs(a, min_leaf) + c_edge,
            ..*a
        });
    }
    record_entries(out)
}

/// `join` (Section 6.4): copies every ancestor that has a descendant in
/// `descendants`, with cost `min(distance + cost(d)) + c_edge` per channel.
/// Ancestors without any (finite-cost) descendant are dropped.
pub fn join(ancestors: &List, descendants: &List, c_edge: Cost) -> List {
    Metric::ListJoinOps.incr();
    join_core(ancestors, descendants, c_edge, Cost::INFINITY)
}

/// `outerjoin` (Section 6.4): like `join`, but every ancestor survives —
/// if no descendant matches (or deleting is cheaper), the leaf below the
/// ancestor is deleted at cost `c_del`. The deletion path contributes no
/// leaf match, so only `cost_any` can take it.
pub fn outerjoin(ancestors: &List, descendants: &List, c_edge: Cost, c_del: Cost) -> List {
    Metric::ListOuterjoinOps.incr();
    join_core(ancestors, descendants, c_edge, c_del)
}

/// The ancestor envelope `(min pre, max bound)`: descendants with a
/// preorder number outside `(min, max]` fall in no ancestor's interval.
/// Computed from the skip headers when the list is compressed. The empty
/// list yields `(u32::MAX, 0)`, which rejects everything.
fn ancestor_envelope(anc: &LazyList) -> (u32, u32) {
    match anc {
        LazyList::Blocks { blocks, .. } => {
            let hs = blocks.headers();
            match hs.first() {
                Some(first) => (
                    first.min_pre,
                    hs.iter().map(|h| h.max_bound).max().unwrap_or(0),
                ),
                None => (u32::MAX, 0),
            }
        }
        LazyList::Mat(l) => match l.first() {
            Some(first) => (first.pre, l.iter().map(|e| e.bound).max().unwrap_or(0)),
            None => (u32::MAX, 0),
        },
    }
}

/// [`join`] over lazy operands: compressed frames that cannot contribute
/// output are skipped via their skip headers instead of decoded. The
/// result is byte-identical to forcing both operands and calling [`join`].
pub fn join_lazy(ancestors: &LazyList, descendants: &LazyList, c_edge: Cost) -> List {
    Metric::ListJoinOps.incr();
    join_core_lazy(ancestors, descendants, c_edge, Cost::INFINITY)
}

/// [`outerjoin`] over lazy operands; see [`join_lazy`]. Ancestor-side
/// skipping only applies when `c_del` is infinite (then unmatched
/// ancestors drop, exactly as in `join`); with a finite deletion cost
/// every ancestor survives and must be decoded.
pub fn outerjoin_lazy(
    ancestors: &LazyList,
    descendants: &LazyList,
    c_edge: Cost,
    c_del: Cost,
) -> List {
    Metric::ListOuterjoinOps.incr();
    join_core_lazy(ancestors, descendants, c_edge, c_del)
}

fn join_core_lazy(ancestors: &LazyList, descendants: &LazyList, c_edge: Cost, c_del: Cost) -> List {
    // Descendant frames wholly outside the ancestor envelope contribute to
    // no interval minimum: skip them. (Any witness descendant of a kept
    // ancestor frame lies inside the envelope, so this never starves the
    // ancestor test below.)
    let desc: Cow<'_, List> = match descendants {
        LazyList::Blocks { blocks, is_leaf } => {
            let (lo, hi) = ancestor_envelope(ancestors);
            let hs = blocks.headers();
            Cow::Owned(decode_frames(blocks, *is_leaf, |i| {
                hs[i].max_pre > lo && hs[i].min_pre <= hi
            }))
        }
        LazyList::Mat(l) => Cow::Borrowed(l),
    };
    // When unmatched ancestors are dropped anyway (`join`, or an
    // `outerjoin` whose deletion is forbidden), skip ancestor frames with
    // no descendant in `(min_pre, max_bound]`: every interval minimum in
    // such a frame is infinite, so `join_core` would discard each entry.
    // Enclosing ancestors outside the frame are unaffected — interval
    // minima fold upward transitively, not through intermediate entries.
    let anc: Cow<'_, List> = match ancestors {
        LazyList::Blocks { blocks, is_leaf } if !c_del.is_finite() => {
            let hs = blocks.headers();
            let mut from = 0usize;
            Cow::Owned(decode_frames(blocks, *is_leaf, |i| {
                // `min_pre` grows across frames, so the probe into `desc`
                // never moves backwards (a single forward gallop overall).
                from += desc[from..].partition_point(|d| d.pre <= hs[i].min_pre);
                from < desc.len() && desc[from].pre <= hs[i].max_bound
            }))
        }
        other => other.force(),
    };
    join_core(&anc, &desc, c_edge, c_del)
}

/// [`intersect`] over lazy operands: a compressed frame on either side is
/// decoded only if its `[min_pre, max_pre]` key range can meet an entry of
/// the other side. Results are identical to forcing + [`intersect`].
pub fn intersect_lazy(left: &LazyList, right: &LazyList, c_edge: Cost) -> List {
    let a = decode_overlapping(left, right);
    let b = decode_overlapping(right, left);
    intersect(&a, &b, c_edge)
}

/// Materializes `x`, skipping compressed frames whose pre-range cannot
/// overlap any entry (or frame) of `other`.
fn decode_overlapping<'x>(x: &'x LazyList<'_>, other: &LazyList<'_>) -> Cow<'x, List> {
    let (blocks, is_leaf) = match x {
        LazyList::Mat(l) => return Cow::Borrowed(l),
        LazyList::Blocks { blocks, is_leaf } => (*blocks, *is_leaf),
    };
    let hs = blocks.headers();
    match other {
        LazyList::Mat(l) => {
            let mut from = 0usize;
            Cow::Owned(decode_frames(blocks, is_leaf, |i| {
                from += l[from..].partition_point(|e| e.pre < hs[i].min_pre);
                from < l.len() && l[from].pre <= hs[i].max_pre
            }))
        }
        LazyList::Blocks { blocks: ob, .. } => {
            let os = ob.headers();
            let mut from = 0usize;
            Cow::Owned(decode_frames(blocks, is_leaf, |i| {
                from += os[from..].partition_point(|h| h.max_pre < hs[i].min_pre);
                from < os.len() && os[from].min_pre <= hs[i].max_pre
            }))
        }
    }
}

/// Literal-complexity variant of [`join`] that, for every ancestor,
/// rescans its descendant interval by binary search + linear scan — the
/// O(s·l)-style formulation closest to the paper's description. Only
/// compiled for the ablation benchmarks (`--features ablation`, enabled
/// by the bench crate); results are identical to [`join`].
#[cfg(feature = "ablation")]
pub fn join_paper(ancestors: &List, descendants: &List, c_edge: Cost) -> List {
    Metric::ListJoinOps.incr();
    let mut out = Vec::new();
    for a in ancestors {
        let start = descendants.partition_point(|d| d.pre <= a.pre);
        let mut min_any = Cost::INFINITY;
        let mut min_leaf = Cost::INFINITY;
        for d in &descendants[start..] {
            if d.pre > a.bound {
                break;
            }
            min_any = min_any.min(d.pathcost + d.cost_any);
            min_leaf = min_leaf.min(d.pathcost + d.cost_leaf);
        }
        let cost_any = finish_costs(a, min_any) + c_edge;
        if !cost_any.is_finite() {
            continue;
        }
        out.push(Entry {
            cost_any,
            cost_leaf: finish_costs(a, min_leaf) + c_edge,
            ..*a
        });
    }
    record_entries(out)
}

/// Literal-complexity variant of [`outerjoin`]; see [`join_paper`].
#[cfg(feature = "ablation")]
pub fn outerjoin_paper(ancestors: &List, descendants: &List, c_edge: Cost, c_del: Cost) -> List {
    Metric::ListOuterjoinOps.incr();
    let mut out = Vec::new();
    for a in ancestors {
        let start = descendants.partition_point(|d| d.pre <= a.pre);
        let mut min_any = Cost::INFINITY;
        let mut min_leaf = Cost::INFINITY;
        for d in &descendants[start..] {
            if d.pre > a.bound {
                break;
            }
            min_any = min_any.min(d.pathcost + d.cost_any);
            min_leaf = min_leaf.min(d.pathcost + d.cost_leaf);
        }
        let cost_any = finish_costs(a, min_any).min(c_del) + c_edge;
        if !cost_any.is_finite() {
            continue;
        }
        out.push(Entry {
            cost_any,
            cost_leaf: finish_costs(a, min_leaf) + c_edge,
            ..*a
        });
    }
    record_entries(out)
}

/// `intersect` (Section 6.4): keeps nodes present in both lists; costs are
/// the channel-wise sums (+ `c_edge`). The leaf channel requires a leaf
/// match on at least one side.
pub fn intersect(left: &List, right: &List, c_edge: Cost) -> List {
    debug_check_sorted(left);
    debug_check_sorted(right);
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        let (a, b) = (left[i], right[j]);
        match a.pre.cmp(&b.pre) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
                let cost_any = a.cost_any + b.cost_any + c_edge;
                if !cost_any.is_finite() {
                    continue;
                }
                let cost_leaf = (a.cost_leaf + b.cost_any).min(a.cost_any + b.cost_leaf) + c_edge;
                out.push(Entry {
                    cost_any,
                    cost_leaf,
                    ..a
                });
            }
        }
    }
    record_op(Metric::ListIntersectOps, out)
}

/// `union` (Section 6.4): keeps nodes of either list; shared nodes take the
/// channel-wise minimum. `c_edge` is added to every output entry.
pub fn union(left: &List, right: &List, c_edge: Cost) -> List {
    debug_check_sorted(left);
    debug_check_sorted(right);
    let mut out = Vec::with_capacity(left.len().max(right.len()));
    let (mut i, mut j) = (0, 0);
    while i < left.len() || j < right.len() {
        let entry = match (left.get(i), right.get(j)) {
            (Some(a), Some(b)) if a.pre == b.pre => {
                i += 1;
                j += 1;
                Entry {
                    cost_any: a.cost_any.min(b.cost_any) + c_edge,
                    cost_leaf: a.cost_leaf.min(b.cost_leaf) + c_edge,
                    ..*a
                }
            }
            (Some(a), Some(b)) if a.pre < b.pre => {
                i += 1;
                Entry {
                    cost_any: a.cost_any + c_edge,
                    cost_leaf: a.cost_leaf + c_edge,
                    ..*a
                }
            }
            (Some(_), Some(b)) => {
                j += 1;
                Entry {
                    cost_any: b.cost_any + c_edge,
                    cost_leaf: b.cost_leaf + c_edge,
                    ..*b
                }
            }
            (Some(a), None) => {
                i += 1;
                Entry {
                    cost_any: a.cost_any + c_edge,
                    cost_leaf: a.cost_leaf + c_edge,
                    ..*a
                }
            }
            (None, Some(b)) => {
                j += 1;
                Entry {
                    cost_any: b.cost_any + c_edge,
                    cost_leaf: b.cost_leaf + c_edge,
                    ..*b
                }
            }
            (None, None) => break,
        };
        if entry.cost_any.is_finite() {
            out.push(entry);
        }
    }
    record_op(Metric::ListUnionOps, out)
}

/// `sort` (Section 6.4): the best `n` root–cost pairs, ranked by the
/// selected channel, ties broken by preorder number. `None` returns all
/// (finite-cost) pairs — the `n = ∞` case of the experiments.
pub fn sort_best(n: Option<usize>, list: &List, use_leaf_channel: bool) -> Vec<(u32, Cost)> {
    let mut pairs: Vec<(u32, Cost)> = list
        .iter()
        .map(|e| {
            (
                e.pre,
                if use_leaf_channel {
                    e.cost_leaf
                } else {
                    e.cost_any
                },
            )
        })
        .filter(|(_, c)| c.is_finite())
        .collect();
    // Top-n selection: partition the n best pairs to the front in O(len),
    // then sort only those. (cost, pre) is a total order over distinct
    // preorders, so the outcome is identical to a full sort + truncate —
    // including the deterministic preorder tie-break.
    match n {
        Some(n) if n > 0 && n < pairs.len() => {
            pairs.select_nth_unstable_by(n - 1, |a, b| (a.1, a.0).cmp(&(b.1, b.0)));
            pairs.truncate(n);
            pairs.sort_by_key(|&(pre, c)| (c, pre));
        }
        Some(0) => pairs.clear(),
        _ => pairs.sort_by_key(|&(pre, c)| (c, pre)),
    }
    Metric::ListSortOps.incr();
    Metric::ListEntriesProduced.add(pairs.len() as u64);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(pre: u32, bound: u32, pathcost: u64, inscost: u64, any: u64, leaf: Option<u64>) -> Entry {
        Entry {
            pre,
            bound,
            pathcost: Cost::finite(pathcost),
            inscost: Cost::finite(inscost),
            cost_any: Cost::finite(any),
            cost_leaf: leaf.map(Cost::finite).unwrap_or(Cost::INFINITY),
        }
    }

    #[test]
    fn shift_adds_to_both_channels() {
        let l = shift(vec![e(1, 1, 0, 1, 2, Some(3))], Cost::finite(5));
        assert_eq!(l[0].cost_any, Cost::finite(7));
        assert_eq!(l[0].cost_leaf, Cost::finite(8));
        let l = shift(vec![e(1, 1, 0, 1, 2, None)], Cost::finite(5));
        assert_eq!(l[0].cost_leaf, Cost::INFINITY);
    }

    #[test]
    fn merge_interleaves_and_charges_renames() {
        let left = vec![e(1, 1, 0, 1, 0, Some(0)), e(5, 5, 0, 1, 0, Some(0))];
        let right = vec![e(3, 3, 0, 1, 0, Some(0))];
        let m = merge(&left, &right, Cost::finite(4));
        assert_eq!(m.iter().map(|x| x.pre).collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(m[1].cost_any, Cost::finite(4));
        assert_eq!(m[0].cost_any, Cost::ZERO);
    }

    #[test]
    fn merge_equal_pre_takes_minimum() {
        let left = vec![e(2, 2, 0, 1, 7, Some(7))];
        let right = vec![e(2, 2, 0, 1, 1, Some(1))];
        let m = merge(&left, &right, Cost::finite(3));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].cost_any, Cost::finite(4)); // 1 + rename 3 < 7
    }

    // A small shape:
    //   a(pre 1, bound 9, pathcost 1, inscost 1)
    //     x(pre 2..)   d(pre 4, pathcost 3)
    //   a(pre 10, bound 12, pathcost 1, inscost 1)
    //     d(pre 12, pathcost 4)
    fn ancestors() -> List {
        vec![e(1, 9, 1, 1, 0, None), e(10, 12, 1, 1, 0, None)]
    }

    #[test]
    fn join_computes_distance_plus_cost() {
        let desc = vec![e(4, 4, 3, 1, 5, Some(7)), e(12, 12, 4, 1, 2, None)];
        let j = join(&ancestors(), &desc, Cost::ZERO);
        assert_eq!(j.len(), 2);
        // distance = pathcost(d) - pathcost(a) - inscost(a) = 3 - 1 - 1 = 1
        assert_eq!(j[0].cost_any, Cost::finite(1 + 5));
        assert_eq!(j[0].cost_leaf, Cost::finite(1 + 7));
        // second ancestor: distance = 4 - 2 = 2
        assert_eq!(j[1].cost_any, Cost::finite(2 + 2));
        assert_eq!(j[1].cost_leaf, Cost::INFINITY);
    }

    #[test]
    fn join_drops_ancestors_without_descendants() {
        let desc = vec![e(4, 4, 3, 1, 0, Some(0))];
        let j = join(&ancestors(), &desc, Cost::ZERO);
        assert_eq!(j.len(), 1);
        assert_eq!(j[0].pre, 1);
    }

    #[test]
    fn join_picks_cheapest_descendant() {
        let desc = vec![e(2, 2, 3, 1, 9, Some(9)), e(4, 4, 3, 1, 1, Some(20))];
        let j = join(&ancestors(), &desc, Cost::ZERO);
        // any channel: min(1+9, 1+1) = 2; leaf channel: min(1+9, 1+20) = 10.
        assert_eq!(j[0].cost_any, Cost::finite(2));
        assert_eq!(j[0].cost_leaf, Cost::finite(10));
    }

    #[test]
    fn join_adds_edge_cost() {
        let desc = vec![e(4, 4, 3, 1, 0, Some(0))];
        let j = join(&ancestors(), &desc, Cost::finite(3));
        assert_eq!(j[0].cost_any, Cost::finite(1 + 3));
    }

    #[test]
    fn join_handles_nested_ancestors() {
        // a(1..9) contains a(2..5); descendant at 4 must count for both,
        // descendant at 7 only for the outer.
        let anc = vec![e(1, 9, 0, 1, 0, None), e(2, 5, 1, 1, 0, None)];
        let desc = vec![e(4, 4, 2, 1, 0, Some(0)), e(7, 7, 1, 1, 10, Some(10))];
        let j = join(&anc, &desc, Cost::ZERO);
        assert_eq!(j.len(), 2);
        // outer: min(dist(0->2)=1 + 0, dist(0->1)=0 + 10) = 1
        assert_eq!(j[0].cost_any, Cost::finite(1));
        // inner: dist(1->2)=0 + 0 = 0
        assert_eq!(j[1].cost_any, Cost::ZERO);
    }

    #[test]
    fn equal_pre_is_not_its_own_descendant() {
        let anc = vec![e(1, 9, 0, 1, 0, None)];
        let desc = vec![e(1, 9, 0, 1, 0, Some(0))];
        assert!(join(&anc, &desc, Cost::ZERO).is_empty());
    }

    #[test]
    fn outerjoin_keeps_all_ancestors() {
        let desc = vec![e(4, 4, 3, 1, 0, Some(0))];
        let oj = outerjoin(&ancestors(), &desc, Cost::ZERO, Cost::finite(6));
        assert_eq!(oj.len(), 2);
        // first: match (distance 1) beats deletion (6)
        assert_eq!(oj[0].cost_any, Cost::finite(1));
        assert_eq!(oj[0].cost_leaf, Cost::finite(1));
        // second: no descendant -> deletion
        assert_eq!(oj[1].cost_any, Cost::finite(6));
        assert_eq!(oj[1].cost_leaf, Cost::INFINITY);
    }

    #[test]
    fn outerjoin_prefers_deletion_when_cheaper() {
        let desc = vec![e(4, 4, 9, 1, 0, Some(0))]; // distance 7
        let oj = outerjoin(&ancestors(), &desc, Cost::ZERO, Cost::finite(2));
        assert_eq!(oj[0].cost_any, Cost::finite(2)); // delete
        assert_eq!(oj[0].cost_leaf, Cost::finite(7)); // leaf channel can't delete
    }

    #[test]
    fn outerjoin_with_infinite_delcost_drops_unmatched() {
        let desc = vec![e(4, 4, 3, 1, 0, Some(0))];
        let oj = outerjoin(&ancestors(), &desc, Cost::ZERO, Cost::INFINITY);
        assert_eq!(oj.len(), 1);
        assert_eq!(oj[0].pre, 1);
    }

    #[test]
    fn paper_variants_agree_with_fast_joins() {
        let anc = vec![
            e(1, 20, 0, 1, 0, None),
            e(2, 9, 1, 1, 0, None),
            e(3, 6, 2, 1, 0, None),
            e(10, 15, 1, 2, 0, None),
        ];
        let desc = vec![
            e(4, 4, 4, 1, 2, Some(3)),
            e(5, 5, 3, 1, 9, None),
            e(8, 8, 2, 1, 0, Some(0)),
            e(12, 12, 5, 1, 1, Some(4)),
            e(18, 18, 1, 1, 7, Some(7)),
        ];
        for c_edge in [Cost::ZERO, Cost::finite(2)] {
            assert_eq!(join(&anc, &desc, c_edge), join_paper(&anc, &desc, c_edge));
            for c_del in [Cost::finite(1), Cost::finite(100), Cost::INFINITY] {
                assert_eq!(
                    outerjoin(&anc, &desc, c_edge, c_del),
                    outerjoin_paper(&anc, &desc, c_edge, c_del)
                );
            }
        }
    }

    #[test]
    fn intersect_requires_both_sides() {
        let l = vec![e(1, 1, 0, 1, 2, Some(2)), e(3, 3, 0, 1, 1, None)];
        let r = vec![e(3, 3, 0, 1, 4, Some(6)), e(5, 5, 0, 1, 0, Some(0))];
        let x = intersect(&l, &r, Cost::ZERO);
        assert_eq!(x.len(), 1);
        assert_eq!(x[0].pre, 3);
        assert_eq!(x[0].cost_any, Cost::finite(5));
        // leaf: min(inf + 4, 1 + 6) = 7
        assert_eq!(x[0].cost_leaf, Cost::finite(7));
    }

    #[test]
    fn union_takes_minimum_on_overlap() {
        let l = vec![e(1, 1, 0, 1, 2, Some(2))];
        let r = vec![e(1, 1, 0, 1, 1, None), e(4, 4, 0, 1, 3, Some(3))];
        let u = union(&l, &r, Cost::finite(1));
        assert_eq!(u.len(), 2);
        assert_eq!(u[0].cost_any, Cost::finite(2)); // min(2,1)+1
        assert_eq!(u[0].cost_leaf, Cost::finite(3)); // min(2,inf)+1
        assert_eq!(u[1].cost_any, Cost::finite(4));
    }

    #[test]
    fn sort_best_ranks_by_cost_then_pre() {
        let l = vec![
            e(5, 5, 0, 1, 3, Some(3)),
            e(1, 1, 0, 1, 3, Some(5)),
            e(9, 9, 0, 1, 1, None),
        ];
        // leaf channel: entry 9 filtered (infinite), tie between costs.
        let top = sort_best(None, &l, true);
        assert_eq!(top, vec![(5, Cost::finite(3)), (1, Cost::finite(5))]);
        // any channel: 9 is cheapest.
        let top = sort_best(Some(2), &l, false);
        assert_eq!(top, vec![(9, Cost::finite(1)), (1, Cost::finite(3))]);
    }

    #[test]
    fn sort_best_truncates() {
        let l = vec![e(1, 1, 0, 1, 1, Some(1)), e(2, 2, 0, 1, 2, Some(2))];
        assert_eq!(sort_best(Some(1), &l, true).len(), 1);
        assert_eq!(sort_best(Some(0), &l, true).len(), 0);
    }

    #[test]
    fn empty_lists_everywhere() {
        let empty: List = vec![];
        let some = vec![e(1, 1, 0, 1, 0, Some(0))];
        assert!(join(&empty, &some, Cost::ZERO).is_empty());
        assert!(join(&some, &empty, Cost::ZERO).is_empty());
        assert!(intersect(&empty, &some, Cost::ZERO).is_empty());
        assert_eq!(union(&empty, &some, Cost::ZERO).len(), 1);
        assert_eq!(merge(&empty, &some, Cost::ZERO).len(), 1);
        assert_eq!(
            outerjoin(&some, &empty, Cost::ZERO, Cost::finite(1)).len(),
            1
        );
    }

    /// `n` disjoint sibling intervals, compressed: pre `i*10+1`, bound
    /// `i*10+6`.
    fn sibling_blocks(n: u32) -> BlockList {
        let postings: Vec<Posting> = (0..n)
            .map(|i| Posting {
                pre: i * 10 + 1,
                bound: i * 10 + 6,
                pathcost: Cost::finite(1),
                inscost: Cost::ZERO,
            })
            .collect();
        BlockList::from_postings(&postings)
    }

    #[test]
    fn lazy_joins_match_eager_joins_and_skip_ancestor_frames() {
        // 300 ancestors span 3 compressed frames; descendants hit only a
        // few, so whole ancestor frames are skippable.
        let anc_blocks = sibling_blocks(300);
        let anc_lazy = LazyList::Blocks {
            blocks: &anc_blocks,
            is_leaf: false,
        };
        let anc_eager = anc_lazy.force().into_owned();
        // All descendants land under ancestors of the first frame, so the
        // second and third ancestor frames have no witness and skip.
        let desc: List = [3u32, 5, 8]
            .iter()
            .map(|&i| e(i * 10 + 3, i * 10 + 3, 3, 1, 2, Some(4)))
            .collect();

        for c_edge in [Cost::ZERO, Cost::finite(1)] {
            let before = approxql_metrics::snapshot();
            let lazy = join_lazy(&anc_lazy, &LazyList::Mat(desc.clone()), c_edge);
            let skipped = approxql_metrics::snapshot().get(Metric::PostingsBlocksSkipped)
                - before.get(Metric::PostingsBlocksSkipped);
            assert_eq!(lazy, join(&anc_eager, &desc, c_edge));
            assert_eq!(skipped, 2, "witness-free ancestor frames must skip");
            for c_del in [Cost::finite(2), Cost::INFINITY] {
                assert_eq!(
                    outerjoin_lazy(&anc_lazy, &LazyList::Mat(desc.clone()), c_edge, c_del),
                    outerjoin(&anc_eager, &desc, c_edge, c_del)
                );
            }
        }
    }

    #[test]
    fn lazy_descendant_frames_skip_outside_the_ancestor_envelope() {
        let desc_blocks = sibling_blocks(400);
        let desc_lazy = LazyList::Blocks {
            blocks: &desc_blocks,
            is_leaf: true,
        };
        let desc_eager = desc_lazy.force().into_owned();
        // One narrow ancestor: every descendant frame outside (50, 80]
        // skips via the envelope. Descendant pathcost (1) covers ancestor
        // pathcost + inscost (0 + 1).
        let anc: List = vec![e(50, 80, 0, 1, 0, None)];
        let before = approxql_metrics::snapshot();
        assert_eq!(
            join_lazy(&LazyList::Mat(anc.clone()), &desc_lazy, Cost::ZERO),
            join(&anc, &desc_eager, Cost::ZERO)
        );
        let skipped = approxql_metrics::snapshot().get(Metric::PostingsBlocksSkipped)
            - before.get(Metric::PostingsBlocksSkipped);
        assert!(skipped > 0, "no descendant frame was skipped");
        // A finite deletion cost forces every ancestor through but still
        // envelope-skips descendants.
        assert_eq!(
            outerjoin_lazy(
                &LazyList::Mat(anc.clone()),
                &desc_lazy,
                Cost::ZERO,
                Cost::finite(3)
            ),
            outerjoin(&anc, &desc_eager, Cost::ZERO, Cost::finite(3))
        );
        // Empty-ancestor envelope rejects every descendant frame.
        assert!(join_lazy(&LazyList::Mat(vec![]), &desc_lazy, Cost::ZERO).is_empty());
    }

    #[test]
    fn lazy_intersect_matches_eager_in_all_mixes() {
        let a_blocks = sibling_blocks(300);
        let b_blocks = sibling_blocks(40);
        let la = LazyList::Blocks {
            blocks: &a_blocks,
            is_leaf: true,
        };
        let lb = LazyList::Blocks {
            blocks: &b_blocks,
            is_leaf: false,
        };
        let ea = la.force().into_owned();
        let eb = lb.force().into_owned();
        let want = intersect(&ea, &eb, Cost::ZERO);
        assert!(!want.is_empty());
        assert_eq!(intersect_lazy(&la, &lb, Cost::ZERO), want);
        assert_eq!(intersect_lazy(&lb, &la, Cost::ZERO), want);
        assert_eq!(
            intersect_lazy(&la, &LazyList::Mat(eb.clone()), Cost::ZERO),
            want
        );
        assert_eq!(
            intersect_lazy(&LazyList::Mat(ea.clone()), &lb, Cost::ZERO),
            want
        );
        assert_eq!(
            intersect_lazy(
                &LazyList::Mat(ea.clone()),
                &LazyList::Mat(eb.clone()),
                Cost::ZERO
            ),
            want
        );
    }

    #[test]
    fn lazy_list_len_comes_from_headers() {
        let blocks = sibling_blocks(300);
        let lazy = LazyList::Blocks {
            blocks: &blocks,
            is_leaf: false,
        };
        assert_eq!(lazy.len(), 300);
        assert!(!lazy.is_empty());
        assert_eq!(lazy.force().len(), 300);
        let empty = BlockList::default();
        let lazy_empty = LazyList::Blocks {
            blocks: &empty,
            is_leaf: false,
        };
        assert!(lazy_empty.is_empty());
        assert!(LazyList::Mat(vec![]).is_empty());
    }
}
