//! The user-facing facade: documents + cost model + indexes + schema.

use crate::direct::{self, DirectStats, EvalOptions};
use crate::schema_eval::{self, EvalStats, SchemaEvalConfig};
use approxql_cost::{parse_cost_file, write_cost_file, Cost, CostFileError, CostModel, NodeType};
use approxql_index::persist::{
    load_blob, load_label_index, load_secondary_index, save_blob, save_label_index,
    save_secondary_index, PersistError,
};
use approxql_index::{LabelIndex, Posting};
use approxql_metrics::Metric;
use approxql_plan::{self as plan, Plan, PlanOp};
use approxql_query::expand::ExpandedQuery;
use approxql_query::{ParseError, Query, QueryInput};
use approxql_schema::{Schema, SchemaAssembleError, SchemaDelta};
use approxql_storage::{CheckReport, StorageError, Store};
use approxql_tree::{
    decode_doc_segment, decode_docmap, decode_interner, encode_docmap, encode_interner, DataTree,
    DataTreeBuilder, DocSpan, LabelId, NodeId, TreeDecodeError, TreeError,
};
use approxql_xml::{parse_document, Document, Element, XmlError};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Errors raised by [`Database`] operations.
#[derive(Debug)]
pub enum DatabaseError {
    /// Malformed XML input.
    Xml(XmlError),
    /// Malformed approXQL query.
    Query(ParseError),
    /// Tree-level failure (e.g. materializing a text node).
    Tree(TreeError),
    /// Storage-layer failure.
    Storage(StorageError),
    /// Index (de)serialization failure.
    Persist(PersistError),
    /// Serialized tree decoding failure.
    TreeDecode(TreeDecodeError),
    /// Stored cost file failed to parse.
    CostFile(CostFileError),
    /// The persisted schema parts contradict the data tree.
    Schema(SchemaAssembleError),
}

impl fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatabaseError::Xml(e) => write!(f, "{e}"),
            DatabaseError::Query(e) => write!(f, "{e}"),
            DatabaseError::Tree(e) => write!(f, "{e}"),
            DatabaseError::Storage(e) => write!(f, "{e}"),
            DatabaseError::Persist(e) => write!(f, "{e}"),
            DatabaseError::TreeDecode(e) => write!(f, "{e}"),
            DatabaseError::CostFile(e) => write!(f, "{e}"),
            DatabaseError::Schema(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DatabaseError {}

macro_rules! from_error {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for DatabaseError {
            fn from(e: $ty) -> Self {
                DatabaseError::$variant(e)
            }
        }
    };
}

from_error!(Xml, XmlError);
from_error!(Query, ParseError);
from_error!(Tree, TreeError);
from_error!(Storage, StorageError);
from_error!(Persist, PersistError);
from_error!(TreeDecode, TreeDecodeError);
from_error!(CostFile, CostFileError);
from_error!(Schema, SchemaAssembleError);

/// One result of a query: the embedding root and its cost (Definition 11's
/// root–cost pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryHit {
    /// Root of the result subtree.
    pub root: NodeId,
    /// Embedding cost (0 = exact match).
    pub cost: Cost,
}

/// Capacity of the per-database compiled-plan LRU cache. Production
/// workloads repeat a small set of query shapes (the ROADMAP's serving
/// scenario); 32 plans cover them while bounding memory.
const PLAN_CACHE_CAP: usize = 32;

/// The keyed plan cache: most-recently-used first. Keys pair the
/// normalized query text (the parsed query's canonical rendering) with
/// the cost-model fingerprint, so a plan is only reused when both the
/// structure *and* the expansion-driving costs are unchanged. Each entry
/// records the set of labels its plan fetches so mutations can evict
/// exactly the plans whose inputs they touched (DESIGN.md §15).
struct PlanCache {
    entries: Vec<PlanCacheEntry>,
}

/// One cache entry: `(cost fingerprint, normalized query)` key, the
/// compiled plan, and its fetch-label invalidation footprint.
type PlanCacheEntry = ((u64, String), Arc<Plan>, HashSet<String>);

/// The labels a compiled plan reads from the label indexes — the entry's
/// invalidation footprint.
fn fetch_labels(plan: &Plan) -> HashSet<String> {
    plan.ops()
        .iter()
        .filter_map(|op| match op {
            PlanOp::Fetch { label, .. } => Some(label.clone()),
            _ => None,
        })
        .collect()
}

impl PlanCache {
    fn get(&mut self, key: &(u64, String)) -> Option<Arc<Plan>> {
        let pos = self.entries.iter().position(|(k, _, _)| k == key)?;
        let hit = self.entries.remove(pos);
        let plan = Arc::clone(&hit.1);
        self.entries.insert(0, hit);
        Some(plan)
    }

    fn insert(&mut self, key: (u64, String), plan: Arc<Plan>) {
        self.entries.retain(|(k, _, _)| *k != key);
        let labels = fetch_labels(&plan);
        self.entries.insert(0, (key, plan, labels));
        self.entries.truncate(PLAN_CACHE_CAP);
    }

    /// Drops every entry whose fetch set intersects `touched`; returns the
    /// eviction count.
    fn invalidate_touching(&mut self, touched: &HashSet<String>) -> u64 {
        let before = self.entries.len();
        self.entries
            .retain(|(_, _, labels)| labels.is_disjoint(touched));
        (before - self.entries.len()) as u64
    }
}

/// FNV-1a over the canonical cost-file rendering: a stable fingerprint of
/// everything that influences query expansion.
fn cost_fingerprint(costs: &CostModel) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in write_cost_file(costs).as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What one document mutation changed, at the granularity the
/// persistence layer writes: the affected preorder span, the data-level
/// label postings rewritten or emptied, the schema-side delta, and
/// whether the mutation interned new labels. Produced by
/// [`Database::insert_document`] / [`Database::delete_document`] and
/// consumed by [`crate::DbFile`] to persist only the changed keys.
#[derive(Debug)]
pub struct MutationDelta {
    /// Preorder range of the inserted or tombstoned document.
    pub span: DocSpan,
    /// Label postings whose block lists changed (rewrite their keys).
    pub touched_labels: Vec<(NodeType, LabelId)>,
    /// Label postings that emptied entirely (delete their keys).
    pub removed_labels: Vec<(NodeType, LabelId)>,
    /// Schema-side changes (secondary postings, structural rebuild flag).
    pub schema: SchemaDelta,
    /// `true` when the mutation added strings to the interner.
    pub interner_changed: bool,
}

/// An approXQL database: the data tree with its label indexes, schema, and
/// cost model. See the crate docs for an end-to-end example.
pub struct Database {
    tree: DataTree,
    costs: CostModel,
    labels: LabelIndex,
    schema: Schema,
    /// Fingerprint of `costs` (part of every plan-cache key).
    costs_fp: u64,
    /// Bumped once per document mutation: external caches keyed on query
    /// results (anything outside the plan cache) compare stamps to detect
    /// staleness.
    generation: u64,
    /// Compiled physical plans keyed by (cost fingerprint, query text).
    plan_cache: Mutex<PlanCache>,
}

impl Database {
    fn assemble(tree: DataTree, costs: CostModel, labels: LabelIndex, schema: Schema) -> Database {
        let costs_fp = cost_fingerprint(&costs);
        Database {
            tree,
            costs,
            labels,
            schema,
            costs_fp,
            generation: 0,
            plan_cache: Mutex::new(PlanCache {
                entries: Vec::new(),
            }),
        }
    }

    /// Builds a database from an already-constructed data tree. The tree
    /// must have been encoded with the same cost model.
    pub fn from_tree(tree: DataTree, costs: CostModel) -> Database {
        let labels = LabelIndex::build(&tree);
        let schema = Schema::build(&tree, &costs);
        Database::assemble(tree, costs, labels, schema)
    }

    /// Parses one XML document and builds a database over it.
    pub fn from_xml_str(xml: &str, costs: CostModel) -> Result<Database, DatabaseError> {
        Database::from_xml_strs(&[xml], costs)
    }

    /// Parses several XML documents into one collection (all roots hang
    /// below the virtual super-root).
    pub fn from_xml_strs(xmls: &[&str], costs: CostModel) -> Result<Database, DatabaseError> {
        let docs = xmls
            .iter()
            .map(|x| parse_document(x))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Database::from_documents(&docs, costs))
    }

    /// Builds a database from parsed documents.
    pub fn from_documents(docs: &[Document], costs: CostModel) -> Database {
        let mut b = DataTreeBuilder::new();
        for d in docs {
            b.add_document(d);
        }
        let tree = b.build(&costs);
        Database::from_tree(tree, costs)
    }

    /// The data tree.
    pub fn tree(&self) -> &DataTree {
        &self.tree
    }

    /// The cost model.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The label indexes `I_struct`/`I_text`.
    pub fn labels(&self) -> &LabelIndex {
        &self.labels
    }

    /// The schema with its indexes.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The mutation generation stamp: starts at 0 and increments once per
    /// [`Database::insert_document`] / [`Database::delete_document`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Appends one document to the collection, incrementally maintaining
    /// the label indexes, secondary index, and schema (DESIGN.md §15).
    /// The new document's nodes take fresh preorder numbers past the
    /// current maximum; no existing node is relabelled. Cached plans that
    /// fetch any label occurring in the document are evicted.
    pub fn insert_document(&mut self, doc: &Document) -> MutationDelta {
        let interner_before = self.tree.interner().len();
        let span = self.tree.append_document(doc, &self.costs);
        let mut grouped: HashMap<(NodeType, LabelId), Vec<Posting>> = HashMap::new();
        for pre in span.start..=span.bound {
            let n = NodeId(pre);
            grouped
                .entry((self.tree.node_type(n), self.tree.label_id(n)))
                .or_default()
                .push(Posting::from_node(&self.tree, n));
        }
        let mut touched_labels: Vec<(NodeType, LabelId)> = grouped.keys().copied().collect();
        for (&(ty, label), posting) in &grouped {
            // Preorder iteration above leaves each group pre-sorted.
            self.labels.append_postings(ty, label, posting);
        }
        // The virtual root's bound just grew: rewrite its one-entry
        // posting so the index stays identical to a batch rebuild.
        let root = NodeId(0);
        let root_label = self.tree.label_id(root);
        self.labels.insert_posting(
            NodeType::Struct,
            root_label,
            vec![Posting::from_node(&self.tree, root)],
        );
        touched_labels.push((NodeType::Struct, root_label));
        touched_labels.sort_unstable_by_key(|&(t, l)| (t as u8, l.index()));
        touched_labels.dedup();
        let schema = self.schema.insert_range(&self.tree, span, &self.costs);
        self.after_mutation(&touched_labels);
        MutationDelta {
            span,
            touched_labels,
            removed_labels: Vec::new(),
            schema,
            interner_changed: self.tree.interner().len() != interner_before,
        }
    }

    /// Tombstones the document rooted at `root` (a top-level document
    /// root, as listed by the tree's document map), removing its nodes
    /// from every index. Preorder numbers of other documents are
    /// untouched; the gap is never reused. Returns `None` when `root` is
    /// not a live document root.
    pub fn delete_document(&mut self, root: NodeId) -> Option<MutationDelta> {
        let span = self.tree.delete_document(root)?;
        let mut keys: Vec<(NodeType, LabelId)> = (span.start..=span.bound)
            .map(|pre| {
                let n = NodeId(pre);
                (self.tree.node_type(n), self.tree.label_id(n))
            })
            .collect();
        keys.sort_unstable_by_key(|&(t, l)| (t as u8, l.index()));
        keys.dedup();
        let mut touched_labels = Vec::new();
        let mut removed_labels = Vec::new();
        for &(ty, label) in &keys {
            let removed = self.labels.remove_range(ty, label, span.start, span.bound);
            debug_assert!(removed > 0, "tombstoned node missing from label index");
            if self.labels.blocks(ty, label).is_some() {
                touched_labels.push((ty, label));
            } else {
                removed_labels.push((ty, label));
            }
        }
        let schema = self.schema.delete_range(&self.tree, span);
        self.after_mutation(&keys);
        Some(MutationDelta {
            span,
            touched_labels,
            removed_labels,
            schema,
            interner_changed: false,
        })
    }

    /// Post-mutation bookkeeping: evict cached plans that fetch a touched
    /// label (counted by `plan.cache_invalidations`) and bump the
    /// generation stamp.
    fn after_mutation(&mut self, touched: &[(NodeType, LabelId)]) {
        let names: HashSet<String> = touched
            .iter()
            .map(|&(_, l)| self.tree.interner().resolve(l).to_string())
            .collect();
        let mut cache = self
            .plan_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let evicted = cache.invalidate_touching(&names);
        drop(cache);
        if evicted > 0 {
            Metric::PlanCacheInvalidations.add(evicted);
        }
        self.generation += 1;
    }

    /// Parses, normalizes, and expands a query against this database's
    /// cost model. Accepts any query surface: a plain `&str` auto-detects
    /// (classic / JSON query-IR / XPath-lite), a [`QueryInput`] pins one.
    /// Normalization makes the returned `Query` — and so its canonical
    /// rendering, the plan-cache key — surface-independent: equivalent
    /// queries from different surfaces share one cached plan.
    pub fn compile<'a>(
        &self,
        query: impl Into<QueryInput<'a>>,
    ) -> Result<(Query, ExpandedQuery), DatabaseError> {
        let q = query.into().parse()?;
        let ex = ExpandedQuery::build(&q, &self.costs);
        Ok((q, ex))
    }

    /// The compiled physical plan for a parsed query, through the keyed
    /// LRU cache: a hit skips compilation entirely (`plan.cache_hits`),
    /// a miss compiles from `ex` and caches the result. `None` only for
    /// expanded queries that do not compile (not producible by the
    /// parser).
    pub fn plan_for(&self, q: &Query, ex: &ExpandedQuery) -> Option<Arc<Plan>> {
        let key = (self.costs_fp, q.to_string());
        {
            let mut cache = self
                .plan_cache
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(hit) = cache.get(&key) {
                Metric::PlanCacheHits.incr();
                return Some(hit);
            }
        }
        // Compile outside the lock: concurrent misses may both compile,
        // but queries never serialize behind a compilation.
        Metric::PlanCacheMisses.incr();
        let compiled = Arc::new(plan::compile(ex).ok()?);
        let mut cache = self
            .plan_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        cache.insert(key, Arc::clone(&compiled));
        Some(compiled)
    }

    /// Direct evaluation (Section 6): finds **all** approximate results,
    /// sorts them by cost, prunes after `n` (`None` = return everything).
    pub fn query_direct<'a>(
        &self,
        query: impl Into<QueryInput<'a>>,
        n: Option<usize>,
    ) -> Result<Vec<QueryHit>, DatabaseError> {
        Ok(self.query_direct_with(query, n, EvalOptions::default())?.0)
    }

    /// Direct evaluation with explicit options; also returns counters.
    pub fn query_direct_with<'a>(
        &self,
        query: impl Into<QueryInput<'a>>,
        n: Option<usize>,
        opts: EvalOptions,
    ) -> Result<(Vec<QueryHit>, DirectStats), DatabaseError> {
        let (q, ex) = self.compile(query)?;
        let (pairs, stats) = match self.plan_for(&q, &ex) {
            Some(p) => direct::best_n_plan(&p, &self.labels, self.tree.interner(), n, opts),
            None => (Vec::new(), DirectStats::default()),
        };
        Ok((
            pairs
                .into_iter()
                .map(|(pre, cost)| QueryHit {
                    root: NodeId(pre),
                    cost,
                })
                .collect(),
            stats,
        ))
    }

    /// Schema-driven evaluation (Section 7): finds the best `n` results by
    /// generating and executing second-level queries incrementally.
    pub fn query_schema<'a>(
        &self,
        query: impl Into<QueryInput<'a>>,
        n: usize,
    ) -> Result<Vec<QueryHit>, DatabaseError> {
        Ok(self
            .query_schema_with(
                query,
                n,
                EvalOptions::default(),
                SchemaEvalConfig::default(),
            )?
            .0)
    }

    /// Schema-driven evaluation with explicit options; also returns
    /// counters.
    pub fn query_schema_with<'a>(
        &self,
        query: impl Into<QueryInput<'a>>,
        n: usize,
        opts: EvalOptions,
        cfg: SchemaEvalConfig,
    ) -> Result<(Vec<QueryHit>, EvalStats), DatabaseError> {
        let (q, ex) = self.compile(query)?;
        let plan = self.plan_for(&q, &ex);
        let (pairs, stats) = schema_eval::best_n_schema_with_plan(
            &ex,
            plan,
            &self.schema,
            self.tree.interner(),
            n,
            opts,
            cfg,
        );
        Ok((
            pairs
                .into_iter()
                .map(|(pre, cost)| QueryHit {
                    root: NodeId(pre),
                    cost,
                })
                .collect(),
            stats,
        ))
    }

    /// Opens a lazy result stream (incremental retrieval, Section 9):
    /// hits arrive in nondecreasing cost order as second-level queries are
    /// generated and executed on demand.
    ///
    /// ```
    /// # use approxql_core::Database;
    /// # use approxql_cost::CostModel;
    /// # let db = Database::from_xml_str("<a><b>x</b></a>", CostModel::new()).unwrap();
    /// let mut stream = db.query_schema_stream(r#"a[b["x"]]"#).unwrap();
    /// let first = stream.next();
    /// assert!(first.is_some());
    /// ```
    pub fn query_schema_stream<'a>(
        &self,
        query: impl Into<QueryInput<'a>>,
    ) -> Result<crate::schema_eval::ResultStream<'_>, DatabaseError> {
        let (q, ex) = self.compile(query)?;
        let plan = self.plan_for(&q, &ex);
        Ok(crate::schema_eval::ResultStream::with_plan(
            &ex,
            plan,
            &self.schema,
            self.tree.interner(),
            EvalOptions::default(),
            SchemaEvalConfig::default(),
        ))
    }

    /// Renders the compiled physical plan of a query — with per-operator
    /// output entry counts from one direct execution — for
    /// `approxql query --explain`. Goes through the plan cache like any
    /// other query.
    pub fn explain_direct<'a>(
        &self,
        query: impl Into<QueryInput<'a>>,
        n: Option<usize>,
        opts: EvalOptions,
    ) -> Result<String, DatabaseError> {
        let (q, ex) = self.compile(query)?;
        match self.plan_for(&q, &ex) {
            Some(p) => Ok(direct::explain(
                &p,
                &self.labels,
                self.tree.interner(),
                n,
                opts,
            )),
            None => Ok(String::from("(query has no executable plan)\n")),
        }
    }

    /// [`Self::explain_direct`] as a JSON document: the plan DAG, its
    /// shape fingerprint, and per-operator entry counts — the machine
    /// face of `--explain`, for diffing plans across query surfaces.
    pub fn explain_direct_json<'a>(
        &self,
        query: impl Into<QueryInput<'a>>,
        n: Option<usize>,
        opts: EvalOptions,
    ) -> Result<String, DatabaseError> {
        let (q, ex) = self.compile(query)?;
        match self.plan_for(&q, &ex) {
            Some(p) => Ok(direct::explain_json(
                &p,
                &self.labels,
                self.tree.interner(),
                n,
                opts,
            )),
            None => Ok(String::from("{\"v\":1,\"ops\":[]}")),
        }
    }

    /// Materializes the result subtree of a hit as an XML element
    /// (the "additional step" after Definition 12).
    pub fn result_element(&self, hit: QueryHit) -> Result<Element, DatabaseError> {
        Ok(self.tree.subtree_element(hit.root)?)
    }

    /// Persists the database into a single store file using the segmented
    /// layout (DESIGN.md §15): cost model, interner, document map, one
    /// segment per live document, both label indexes, the secondary
    /// index, and the schema tree. The schema is persisted — not rebuilt
    /// on open — so schema preorder numbers (which tie-break equal-cost
    /// second-level queries) survive a save/open cycle bit-for-bit.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DatabaseError> {
        let mut store = Store::create_file(path)?;
        write_full_image(&mut store, self)?;
        store.commit()?;
        Ok(())
    }

    /// Opens a database saved with [`Database::save`] (or grown through
    /// [`crate::DbFile`] mutations), validating the persisted parts
    /// against each other.
    pub fn open(path: impl AsRef<Path>) -> Result<Database, DatabaseError> {
        let mut store = Store::open_file(path)?;
        load_from_store(&mut store)
    }

    /// Verifies the on-disk integrity of a database file: opens the store
    /// (recovering to the newest intact commit if needed), walks every
    /// page, checksum, and B+-tree invariant, validates every compressed
    /// posting list (skip-header monotonicity, per-frame entry counts,
    /// decode round-trip — see DESIGN.md §14), and then performs a full
    /// decode so cross-structure corruption (docmap partition, segment
    /// columns, schema/secondary consistency) also surfaces. Returns the
    /// storage layer's [`CheckReport`] on success.
    pub fn check_file(path: impl AsRef<Path>) -> Result<CheckReport, DatabaseError> {
        let mut store = Store::open_file(path)?;
        let report = store.check()?;
        approxql_index::persist::check_posting_blocks(&mut store)?;
        let _ = load_from_store(&mut store)?;
        Ok(report)
    }
}

/// The store key of a live document's column segment: `doc#` + the
/// big-endian start preorder (big-endian so a prefix scan yields
/// documents in preorder).
pub(crate) fn doc_key(start: u32) -> Vec<u8> {
    let mut k = b"doc#".to_vec();
    k.extend_from_slice(&start.to_be_bytes());
    k
}

/// Writes every key of the segmented layout into `store` (no commit).
/// Shared by [`Database::save`] and [`crate::DbFile`]'s full rewrites.
pub(crate) fn write_full_image(store: &mut Store, db: &Database) -> Result<(), DatabaseError> {
    save_blob(store, "costs", write_cost_file(&db.costs).as_bytes())?;
    save_blob(store, "interner", &encode_interner(db.tree.interner()))?;
    save_blob(
        store,
        "docmap",
        &encode_docmap(db.tree.len() as u32, db.tree.documents()),
    )?;
    for &span in db.tree.documents() {
        if span.alive {
            store.put(&doc_key(span.start), &db.tree.doc_segment_bytes(span))?;
        }
    }
    save_label_index(store, &db.labels, db.tree.interner())?;
    save_secondary_index(store, db.schema.secondary(), db.tree.interner())?;
    save_blob(store, "schema", &db.schema.tree().to_bytes())?;
    Ok(())
}

/// Reassembles a database from a store holding the segmented layout,
/// validating the parts against each other (segment spans vs. the
/// document map, labels vs. the interner, secondary keys vs. the schema
/// tree).
pub(crate) fn load_from_store(store: &mut Store) -> Result<Database, DatabaseError> {
    let cost_bytes = load_blob(store, "costs")?;
    let costs = parse_cost_file(&String::from_utf8_lossy(&cost_bytes))?;
    let interner = decode_interner(&load_blob(store, "interner")?)?;
    let (total_len, docs) = decode_docmap(&load_blob(store, "docmap")?)?;
    let mut segments = Vec::new();
    for &span in &docs {
        if !span.alive {
            continue;
        }
        let bytes = store
            .get(&doc_key(span.start))?
            .ok_or(PersistError::MissingBlob("document segment"))?;
        let seg = decode_doc_segment(&bytes, span, interner.len())?;
        segments.push((span, seg));
    }
    let tree = DataTree::from_doc_segments(interner, total_len, docs, &segments, &costs)?;
    let labels = load_label_index(store, tree.interner())?;
    let secondary = load_secondary_index(store, tree.interner())?;
    let schema_tree = DataTree::from_bytes(&load_blob(store, "schema")?)?;
    let schema = Schema::assemble(&tree, schema_tree, secondary)?;
    Ok(Database::assemble(tree, costs, labels, schema))
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_cost::tables::paper_section6_costs;
    use approxql_query::Surface;

    const CATALOG: &str = r#"<catalog>
        <cd><title>Piano Concerto</title><composer>Rachmaninov</composer></cd>
        <cd><title>Kinderszenen</title>
            <tracks><track><title>Vivace piano</title></track></tracks></cd>
    </catalog>"#;

    #[test]
    fn end_to_end_direct_query() {
        let db = Database::from_xml_str(CATALOG, paper_section6_costs()).unwrap();
        let hits = db.query_direct(r#"cd[title["piano"]]"#, None).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].cost, Cost::ZERO);
        let el = db.result_element(hits[0]).unwrap();
        assert_eq!(el.name, "cd");
        assert_eq!(
            el.find_child("title").unwrap().text_content(),
            "piano concerto"
        );
    }

    #[test]
    fn schema_and_direct_agree_end_to_end() {
        let db = Database::from_xml_str(CATALOG, paper_section6_costs()).unwrap();
        let direct = db
            .query_direct(r#"cd[title["piano" and "concerto"]]"#, None)
            .unwrap();
        let schema = db
            .query_schema(r#"cd[title["piano" and "concerto"]]"#, direct.len())
            .unwrap();
        assert_eq!(direct, schema);
    }

    #[test]
    fn query_errors_surface() {
        let db = Database::from_xml_str(CATALOG, CostModel::new()).unwrap();
        assert!(matches!(
            db.query_direct("cd[", None),
            Err(DatabaseError::Query(_))
        ));
    }

    #[test]
    fn xml_errors_surface() {
        assert!(matches!(
            Database::from_xml_str("<broken", CostModel::new()),
            Err(DatabaseError::Xml(_))
        ));
    }

    #[test]
    fn save_and_open_roundtrip() {
        let dir = std::env::temp_dir().join(format!("axql-db-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.axql");
        let db = Database::from_xml_str(CATALOG, paper_section6_costs()).unwrap();
        let before = db.query_direct(r#"cd[title["piano"]]"#, None).unwrap();
        db.save(&path).unwrap();
        let db2 = Database::open(&path).unwrap();
        let after = db2.query_direct(r#"cd[title["piano"]]"#, None).unwrap();
        assert_eq!(before, after);
        let via_schema = db2.query_schema(r#"cd[title["piano"]]"#, 2).unwrap();
        assert_eq!(before, via_schema);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_queries_hit_the_plan_cache() {
        let db = Database::from_xml_str(CATALOG, paper_section6_costs()).unwrap();
        let before = approxql_metrics::snapshot();
        let first = db.query_direct(r#"cd[title["piano"]]"#, None).unwrap();
        let mid = approxql_metrics::snapshot().diff(&before);
        assert_eq!(mid.get(Metric::PlanCacheMisses), 1);
        assert_eq!(mid.get(Metric::PlanCacheHits), 0);
        // Same query again — and via the schema evaluator, which shares
        // the cache: no further compilation.
        let second = db.query_direct(r#"cd[title["piano"]]"#, None).unwrap();
        let via_schema = db
            .query_schema(r#"cd[title["piano"]]"#, first.len())
            .unwrap();
        let after = approxql_metrics::snapshot().diff(&before);
        assert_eq!(after.get(Metric::PlanCacheMisses), 1);
        assert_eq!(after.get(Metric::PlanCacheHits), 2);
        assert_eq!(after.get(Metric::PlanCompile), 1);
        assert_eq!(first, second);
        assert_eq!(first, via_schema);
        // Whitespace-insensitive: normalization maps to the same key.
        let _ = db.query_direct(r#"cd[ title [ "piano" ] ]"#, None).unwrap();
        let norm = approxql_metrics::snapshot().diff(&before);
        assert_eq!(norm.get(Metric::PlanCacheHits), 3);
    }

    #[test]
    fn surfaces_share_one_plan_cache_entry() {
        let db = Database::from_xml_str(CATALOG, paper_section6_costs()).unwrap();
        let classic = r#"cd[title["piano"]]"#;
        let json =
            r#"{"v":1,"query":{"name":"cd","child":{"name":"title","child":{"text":"piano"}}}}"#;
        let xpath = r#"/cd//title["piano"]"#;
        let before = approxql_metrics::snapshot();
        let first = db.query_direct(classic, None).unwrap();
        // The other two surfaces auto-detect and hit the classic entry:
        // one compile total, cross-surface cache hits.
        let via_json = db.query_direct(json, None).unwrap();
        let via_xpath = db.query_direct(xpath, None).unwrap();
        let delta = approxql_metrics::snapshot().diff(&before);
        assert_eq!(delta.get(Metric::PlanCacheMisses), 1);
        assert_eq!(delta.get(Metric::PlanCacheHits), 2);
        assert_eq!(delta.get(Metric::PlanCompile), 1);
        assert_eq!(first, via_json);
        assert_eq!(first, via_xpath);
        // Pinning the surface explicitly works too.
        let pinned = db
            .query_direct(QueryInput::with_surface(json, Surface::Json), None)
            .unwrap();
        assert_eq!(first, pinned);
    }

    #[test]
    fn explain_json_carries_the_fingerprint() {
        let db = Database::from_xml_str(CATALOG, paper_section6_costs()).unwrap();
        let opts = EvalOptions::default();
        let doc = db
            .explain_direct_json(r#"cd[title["piano"]]"#, Some(10), opts)
            .unwrap();
        let parsed = approxql_query::json::parse(&doc).unwrap();
        let fp = parsed.get("fingerprint").unwrap().as_str().unwrap();
        assert!(fp.starts_with("0x"), "{fp}");
        // Same fingerprint for the equivalent XPath-lite spelling.
        let other = db
            .explain_direct_json(r#"/cd//title["piano"]"#, Some(10), opts)
            .unwrap();
        assert_eq!(doc, other, "explain JSON must be surface-independent");
    }

    #[test]
    fn explain_goes_through_the_cache() {
        let db = Database::from_xml_str(CATALOG, paper_section6_costs()).unwrap();
        let text = db
            .explain_direct(r#"cd[title["piano"]]"#, Some(10), EvalOptions::default())
            .unwrap();
        assert!(text.contains("sort_best"), "missing root op:\n{text}");
        assert!(text.contains("entries"), "missing counts:\n{text}");
        let before = approxql_metrics::snapshot();
        let _ = db
            .explain_direct(r#"cd[title["piano"]]"#, Some(10), EvalOptions::default())
            .unwrap();
        let delta = approxql_metrics::snapshot().diff(&before);
        assert_eq!(delta.get(Metric::PlanCacheHits), 1);
    }

    #[test]
    fn incremental_insert_matches_batch_build() {
        let docs = [
            "<cd><title>piano concerto</title></cd>",
            "<cd><title>cello suite</title><composer>Bach</composer></cd>",
            "<mc><title>piano</title><track>allegro</track></mc>",
        ];
        let mut grown = Database::from_xml_str(docs[0], paper_section6_costs()).unwrap();
        for d in &docs[1..] {
            grown.insert_document(&parse_document(d).unwrap());
        }
        let batch = Database::from_xml_strs(&docs, paper_section6_costs()).unwrap();
        // Same tree bytes, same postings, same schema parts.
        assert_eq!(grown.tree().to_bytes(), batch.tree().to_bytes());
        assert_eq!(grown.generation(), 2);
        for q in [r#"cd[title["piano"]]"#, r#"mc[track]"#, r#"cd[composer]"#] {
            assert_eq!(
                grown.query_direct(q, None).unwrap(),
                batch.query_direct(q, None).unwrap()
            );
            assert_eq!(
                grown.query_schema(q, 5).unwrap(),
                batch.query_schema(q, 5).unwrap()
            );
        }
        let posting_dump = |db: &Database| {
            let mut v: Vec<_> = db
                .labels()
                .iter()
                .map(|((ty, l), blocks)| (ty as u8, l.index(), blocks.to_bytes()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(posting_dump(&grown), posting_dump(&batch));
    }

    #[test]
    fn delete_hides_document_and_invalidates_plans() {
        let docs = [
            "<cd><title>piano</title></cd>",
            "<cd><title>cello</title></cd>",
        ];
        let mut db = Database::from_xml_strs(&docs, paper_section6_costs()).unwrap();
        let before = approxql_metrics::snapshot();
        // Warm the cache, then mutate a touched label: the entry must go.
        let all = db.query_direct(r#"cd[title]"#, None).unwrap();
        assert_eq!(all.len(), 2);
        let first = db.tree().documents()[0];
        let delta = db.delete_document(NodeId(first.start)).expect("live root");
        assert_eq!(delta.span.start, first.start);
        let d = approxql_metrics::snapshot().diff(&before);
        assert_eq!(d.get(Metric::PlanCacheInvalidations), 1);
        let left = db.query_direct(r#"cd[title]"#, None).unwrap();
        assert_eq!(left.len(), 1);
        assert!(left[0].root.0 > first.bound);
        // Double delete is a no-op.
        assert!(db.delete_document(NodeId(first.start)).is_none());
        assert_eq!(db.generation(), 1);
    }

    #[test]
    fn multiple_documents_form_one_collection() {
        let db = Database::from_xml_strs(
            &[
                "<cd><title>piano</title></cd>",
                "<mc><title>piano</title></mc>",
            ],
            CostModel::new(),
        )
        .unwrap();
        assert_eq!(
            db.query_direct(r#"cd[title["piano"]]"#, None)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            db.query_direct(r#"mc[title["piano"]]"#, None)
                .unwrap()
                .len(),
            1
        );
    }
}
