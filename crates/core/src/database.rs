//! The user-facing facade: documents + cost model + indexes + schema.

use crate::direct::{self, DirectStats, EvalOptions};
use crate::schema_eval::{self, EvalStats, SchemaEvalConfig};
use approxql_cost::{parse_cost_file, write_cost_file, Cost, CostFileError, CostModel};
use approxql_index::persist::{
    load_blob, load_label_index, save_blob, save_label_index, PersistError,
};
use approxql_index::LabelIndex;
use approxql_metrics::Metric;
use approxql_plan::{self as plan, Plan};
use approxql_query::expand::ExpandedQuery;
use approxql_query::{parse_query, ParseError, Query};
use approxql_schema::Schema;
use approxql_storage::{CheckReport, StorageError, Store};
use approxql_tree::{DataTree, DataTreeBuilder, NodeId, TreeDecodeError, TreeError};
use approxql_xml::{parse_document, Document, Element, XmlError};
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Errors raised by [`Database`] operations.
#[derive(Debug)]
pub enum DatabaseError {
    /// Malformed XML input.
    Xml(XmlError),
    /// Malformed approXQL query.
    Query(ParseError),
    /// Tree-level failure (e.g. materializing a text node).
    Tree(TreeError),
    /// Storage-layer failure.
    Storage(StorageError),
    /// Index (de)serialization failure.
    Persist(PersistError),
    /// Serialized tree decoding failure.
    TreeDecode(TreeDecodeError),
    /// Stored cost file failed to parse.
    CostFile(CostFileError),
}

impl fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatabaseError::Xml(e) => write!(f, "{e}"),
            DatabaseError::Query(e) => write!(f, "{e}"),
            DatabaseError::Tree(e) => write!(f, "{e}"),
            DatabaseError::Storage(e) => write!(f, "{e}"),
            DatabaseError::Persist(e) => write!(f, "{e}"),
            DatabaseError::TreeDecode(e) => write!(f, "{e}"),
            DatabaseError::CostFile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DatabaseError {}

macro_rules! from_error {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for DatabaseError {
            fn from(e: $ty) -> Self {
                DatabaseError::$variant(e)
            }
        }
    };
}

from_error!(Xml, XmlError);
from_error!(Query, ParseError);
from_error!(Tree, TreeError);
from_error!(Storage, StorageError);
from_error!(Persist, PersistError);
from_error!(TreeDecode, TreeDecodeError);
from_error!(CostFile, CostFileError);

/// One result of a query: the embedding root and its cost (Definition 11's
/// root–cost pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryHit {
    /// Root of the result subtree.
    pub root: NodeId,
    /// Embedding cost (0 = exact match).
    pub cost: Cost,
}

/// Capacity of the per-database compiled-plan LRU cache. Production
/// workloads repeat a small set of query shapes (the ROADMAP's serving
/// scenario); 32 plans cover them while bounding memory.
const PLAN_CACHE_CAP: usize = 32;

/// The keyed plan cache: most-recently-used first. Keys pair the
/// normalized query text (the parsed query's canonical rendering) with
/// the cost-model fingerprint, so a plan is only reused when both the
/// structure *and* the expansion-driving costs are unchanged.
struct PlanCache {
    entries: Vec<((u64, String), Arc<Plan>)>,
}

impl PlanCache {
    fn get(&mut self, key: &(u64, String)) -> Option<Arc<Plan>> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let hit = self.entries.remove(pos);
        let plan = Arc::clone(&hit.1);
        self.entries.insert(0, hit);
        Some(plan)
    }

    fn insert(&mut self, key: (u64, String), plan: Arc<Plan>) {
        self.entries.retain(|(k, _)| *k != key);
        self.entries.insert(0, (key, plan));
        self.entries.truncate(PLAN_CACHE_CAP);
    }
}

/// FNV-1a over the canonical cost-file rendering: a stable fingerprint of
/// everything that influences query expansion.
fn cost_fingerprint(costs: &CostModel) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in write_cost_file(costs).as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An approXQL database: the data tree with its label indexes, schema, and
/// cost model. See the crate docs for an end-to-end example.
pub struct Database {
    tree: DataTree,
    costs: CostModel,
    labels: LabelIndex,
    schema: Schema,
    /// Fingerprint of `costs` (part of every plan-cache key).
    costs_fp: u64,
    /// Compiled physical plans keyed by (cost fingerprint, query text).
    plan_cache: Mutex<PlanCache>,
}

impl Database {
    fn assemble(tree: DataTree, costs: CostModel, labels: LabelIndex, schema: Schema) -> Database {
        let costs_fp = cost_fingerprint(&costs);
        Database {
            tree,
            costs,
            labels,
            schema,
            costs_fp,
            plan_cache: Mutex::new(PlanCache {
                entries: Vec::new(),
            }),
        }
    }

    /// Builds a database from an already-constructed data tree. The tree
    /// must have been encoded with the same cost model.
    pub fn from_tree(tree: DataTree, costs: CostModel) -> Database {
        let labels = LabelIndex::build(&tree);
        let schema = Schema::build(&tree, &costs);
        Database::assemble(tree, costs, labels, schema)
    }

    /// Parses one XML document and builds a database over it.
    pub fn from_xml_str(xml: &str, costs: CostModel) -> Result<Database, DatabaseError> {
        Database::from_xml_strs(&[xml], costs)
    }

    /// Parses several XML documents into one collection (all roots hang
    /// below the virtual super-root).
    pub fn from_xml_strs(xmls: &[&str], costs: CostModel) -> Result<Database, DatabaseError> {
        let docs = xmls
            .iter()
            .map(|x| parse_document(x))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Database::from_documents(&docs, costs))
    }

    /// Builds a database from parsed documents.
    pub fn from_documents(docs: &[Document], costs: CostModel) -> Database {
        let mut b = DataTreeBuilder::new();
        for d in docs {
            b.add_document(d);
        }
        let tree = b.build(&costs);
        Database::from_tree(tree, costs)
    }

    /// The data tree.
    pub fn tree(&self) -> &DataTree {
        &self.tree
    }

    /// The cost model.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The label indexes `I_struct`/`I_text`.
    pub fn labels(&self) -> &LabelIndex {
        &self.labels
    }

    /// The schema with its indexes.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Parses and expands a query against this database's cost model.
    pub fn compile(&self, query: &str) -> Result<(Query, ExpandedQuery), DatabaseError> {
        let q = parse_query(query)?;
        let ex = ExpandedQuery::build(&q, &self.costs);
        Ok((q, ex))
    }

    /// The compiled physical plan for a parsed query, through the keyed
    /// LRU cache: a hit skips compilation entirely (`plan.cache_hits`),
    /// a miss compiles from `ex` and caches the result. `None` only for
    /// expanded queries that do not compile (not producible by the
    /// parser).
    pub fn plan_for(&self, q: &Query, ex: &ExpandedQuery) -> Option<Arc<Plan>> {
        let key = (self.costs_fp, q.to_string());
        {
            let mut cache = self
                .plan_cache
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(hit) = cache.get(&key) {
                Metric::PlanCacheHits.incr();
                return Some(hit);
            }
        }
        // Compile outside the lock: concurrent misses may both compile,
        // but queries never serialize behind a compilation.
        Metric::PlanCacheMisses.incr();
        let compiled = Arc::new(plan::compile(ex).ok()?);
        let mut cache = self
            .plan_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        cache.insert(key, Arc::clone(&compiled));
        Some(compiled)
    }

    /// Direct evaluation (Section 6): finds **all** approximate results,
    /// sorts them by cost, prunes after `n` (`None` = return everything).
    pub fn query_direct(
        &self,
        query: &str,
        n: Option<usize>,
    ) -> Result<Vec<QueryHit>, DatabaseError> {
        Ok(self.query_direct_with(query, n, EvalOptions::default())?.0)
    }

    /// Direct evaluation with explicit options; also returns counters.
    pub fn query_direct_with(
        &self,
        query: &str,
        n: Option<usize>,
        opts: EvalOptions,
    ) -> Result<(Vec<QueryHit>, DirectStats), DatabaseError> {
        let (q, ex) = self.compile(query)?;
        let (pairs, stats) = match self.plan_for(&q, &ex) {
            Some(p) => direct::best_n_plan(&p, &self.labels, self.tree.interner(), n, opts),
            None => (Vec::new(), DirectStats::default()),
        };
        Ok((
            pairs
                .into_iter()
                .map(|(pre, cost)| QueryHit {
                    root: NodeId(pre),
                    cost,
                })
                .collect(),
            stats,
        ))
    }

    /// Schema-driven evaluation (Section 7): finds the best `n` results by
    /// generating and executing second-level queries incrementally.
    pub fn query_schema(&self, query: &str, n: usize) -> Result<Vec<QueryHit>, DatabaseError> {
        Ok(self
            .query_schema_with(
                query,
                n,
                EvalOptions::default(),
                SchemaEvalConfig::default(),
            )?
            .0)
    }

    /// Schema-driven evaluation with explicit options; also returns
    /// counters.
    pub fn query_schema_with(
        &self,
        query: &str,
        n: usize,
        opts: EvalOptions,
        cfg: SchemaEvalConfig,
    ) -> Result<(Vec<QueryHit>, EvalStats), DatabaseError> {
        let (q, ex) = self.compile(query)?;
        let plan = self.plan_for(&q, &ex);
        let (pairs, stats) = schema_eval::best_n_schema_with_plan(
            &ex,
            plan,
            &self.schema,
            self.tree.interner(),
            n,
            opts,
            cfg,
        );
        Ok((
            pairs
                .into_iter()
                .map(|(pre, cost)| QueryHit {
                    root: NodeId(pre),
                    cost,
                })
                .collect(),
            stats,
        ))
    }

    /// Opens a lazy result stream (incremental retrieval, Section 9):
    /// hits arrive in nondecreasing cost order as second-level queries are
    /// generated and executed on demand.
    ///
    /// ```
    /// # use approxql_core::Database;
    /// # use approxql_cost::CostModel;
    /// # let db = Database::from_xml_str("<a><b>x</b></a>", CostModel::new()).unwrap();
    /// let mut stream = db.query_schema_stream(r#"a[b["x"]]"#).unwrap();
    /// let first = stream.next();
    /// assert!(first.is_some());
    /// ```
    pub fn query_schema_stream(
        &self,
        query: &str,
    ) -> Result<crate::schema_eval::ResultStream<'_>, DatabaseError> {
        let (q, ex) = self.compile(query)?;
        let plan = self.plan_for(&q, &ex);
        Ok(crate::schema_eval::ResultStream::with_plan(
            &ex,
            plan,
            &self.schema,
            self.tree.interner(),
            EvalOptions::default(),
            SchemaEvalConfig::default(),
        ))
    }

    /// Renders the compiled physical plan of a query — with per-operator
    /// output entry counts from one direct execution — for
    /// `approxql query --explain`. Goes through the plan cache like any
    /// other query.
    pub fn explain_direct(
        &self,
        query: &str,
        n: Option<usize>,
        opts: EvalOptions,
    ) -> Result<String, DatabaseError> {
        let (q, ex) = self.compile(query)?;
        match self.plan_for(&q, &ex) {
            Some(p) => Ok(direct::explain(
                &p,
                &self.labels,
                self.tree.interner(),
                n,
                opts,
            )),
            None => Ok(String::from("(query has no executable plan)\n")),
        }
    }

    /// Materializes the result subtree of a hit as an XML element
    /// (the "additional step" after Definition 12).
    pub fn result_element(&self, hit: QueryHit) -> Result<Element, DatabaseError> {
        Ok(self.tree.subtree_element(hit.root)?)
    }

    /// Persists the database (data tree, cost model, label indexes) into a
    /// single store file. The schema is cheap to rebuild and is derived
    /// again on [`Database::open`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DatabaseError> {
        let mut store = Store::create_file(path)?;
        save_blob(&mut store, "tree", &self.tree.to_bytes())?;
        save_blob(&mut store, "costs", write_cost_file(&self.costs).as_bytes())?;
        save_label_index(&mut store, &self.labels, self.tree.interner())?;
        store.commit()?;
        Ok(())
    }

    /// Opens a database saved with [`Database::save`].
    pub fn open(path: impl AsRef<Path>) -> Result<Database, DatabaseError> {
        let mut store = Store::open_file(path)?;
        let tree_bytes = load_blob(&mut store, "tree")?;
        let tree = DataTree::from_bytes(&tree_bytes)?;
        let cost_bytes = load_blob(&mut store, "costs")?;
        let costs = parse_cost_file(&String::from_utf8_lossy(&cost_bytes))?;
        let labels = load_label_index(&mut store, tree.interner())?;
        let schema = Schema::build(&tree, &costs);
        Ok(Database::assemble(tree, costs, labels, schema))
    }

    /// Verifies the on-disk integrity of a database file without loading
    /// it: opens the store (recovering to the newest intact commit if
    /// needed), walks every page, checksum, and B+-tree invariant, and
    /// then validates every compressed posting list (skip-header
    /// monotonicity, per-frame entry counts, decode round-trip — see
    /// DESIGN.md §14). Returns the storage layer's [`CheckReport`] on
    /// success.
    pub fn check_file(path: impl AsRef<Path>) -> Result<CheckReport, DatabaseError> {
        let mut store = Store::open_file(path)?;
        let report = store.check()?;
        approxql_index::persist::check_posting_blocks(&mut store)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_cost::tables::paper_section6_costs;

    const CATALOG: &str = r#"<catalog>
        <cd><title>Piano Concerto</title><composer>Rachmaninov</composer></cd>
        <cd><title>Kinderszenen</title>
            <tracks><track><title>Vivace piano</title></track></tracks></cd>
    </catalog>"#;

    #[test]
    fn end_to_end_direct_query() {
        let db = Database::from_xml_str(CATALOG, paper_section6_costs()).unwrap();
        let hits = db.query_direct(r#"cd[title["piano"]]"#, None).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].cost, Cost::ZERO);
        let el = db.result_element(hits[0]).unwrap();
        assert_eq!(el.name, "cd");
        assert_eq!(
            el.find_child("title").unwrap().text_content(),
            "piano concerto"
        );
    }

    #[test]
    fn schema_and_direct_agree_end_to_end() {
        let db = Database::from_xml_str(CATALOG, paper_section6_costs()).unwrap();
        let direct = db
            .query_direct(r#"cd[title["piano" and "concerto"]]"#, None)
            .unwrap();
        let schema = db
            .query_schema(r#"cd[title["piano" and "concerto"]]"#, direct.len())
            .unwrap();
        assert_eq!(direct, schema);
    }

    #[test]
    fn query_errors_surface() {
        let db = Database::from_xml_str(CATALOG, CostModel::new()).unwrap();
        assert!(matches!(
            db.query_direct("cd[", None),
            Err(DatabaseError::Query(_))
        ));
    }

    #[test]
    fn xml_errors_surface() {
        assert!(matches!(
            Database::from_xml_str("<broken", CostModel::new()),
            Err(DatabaseError::Xml(_))
        ));
    }

    #[test]
    fn save_and_open_roundtrip() {
        let dir = std::env::temp_dir().join(format!("axql-db-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.axql");
        let db = Database::from_xml_str(CATALOG, paper_section6_costs()).unwrap();
        let before = db.query_direct(r#"cd[title["piano"]]"#, None).unwrap();
        db.save(&path).unwrap();
        let db2 = Database::open(&path).unwrap();
        let after = db2.query_direct(r#"cd[title["piano"]]"#, None).unwrap();
        assert_eq!(before, after);
        let via_schema = db2.query_schema(r#"cd[title["piano"]]"#, 2).unwrap();
        assert_eq!(before, via_schema);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_queries_hit_the_plan_cache() {
        let db = Database::from_xml_str(CATALOG, paper_section6_costs()).unwrap();
        let before = approxql_metrics::snapshot();
        let first = db.query_direct(r#"cd[title["piano"]]"#, None).unwrap();
        let mid = approxql_metrics::snapshot().diff(&before);
        assert_eq!(mid.get(Metric::PlanCacheMisses), 1);
        assert_eq!(mid.get(Metric::PlanCacheHits), 0);
        // Same query again — and via the schema evaluator, which shares
        // the cache: no further compilation.
        let second = db.query_direct(r#"cd[title["piano"]]"#, None).unwrap();
        let via_schema = db
            .query_schema(r#"cd[title["piano"]]"#, first.len())
            .unwrap();
        let after = approxql_metrics::snapshot().diff(&before);
        assert_eq!(after.get(Metric::PlanCacheMisses), 1);
        assert_eq!(after.get(Metric::PlanCacheHits), 2);
        assert_eq!(after.get(Metric::PlanCompile), 1);
        assert_eq!(first, second);
        assert_eq!(first, via_schema);
        // Whitespace-insensitive: normalization maps to the same key.
        let _ = db.query_direct(r#"cd[ title [ "piano" ] ]"#, None).unwrap();
        let norm = approxql_metrics::snapshot().diff(&before);
        assert_eq!(norm.get(Metric::PlanCacheHits), 3);
    }

    #[test]
    fn explain_goes_through_the_cache() {
        let db = Database::from_xml_str(CATALOG, paper_section6_costs()).unwrap();
        let text = db
            .explain_direct(r#"cd[title["piano"]]"#, Some(10), EvalOptions::default())
            .unwrap();
        assert!(text.contains("sort_best"), "missing root op:\n{text}");
        assert!(text.contains("entries"), "missing counts:\n{text}");
        let before = approxql_metrics::snapshot();
        let _ = db
            .explain_direct(r#"cd[title["piano"]]"#, Some(10), EvalOptions::default())
            .unwrap();
        let delta = approxql_metrics::snapshot().diff(&before);
        assert_eq!(delta.get(Metric::PlanCacheHits), 1);
    }

    #[test]
    fn multiple_documents_form_one_collection() {
        let db = Database::from_xml_strs(
            &[
                "<cd><title>piano</title></cd>",
                "<mc><title>piano</title></mc>",
            ],
            CostModel::new(),
        )
        .unwrap();
        assert_eq!(
            db.query_direct(r#"cd[title["piano"]]"#, None)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            db.query_direct(r#"mc[title["piano"]]"#, None)
                .unwrap()
                .len(),
            1
        );
    }
}
