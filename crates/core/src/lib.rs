#![forbid(unsafe_code)]
//! The approXQL evaluation algorithms — the paper's primary contribution.
//!
//! * [`list`] — the list algebra of Sections 6.3/6.4 (`fetch`, `merge`,
//!   `join`, `outerjoin`, `intersect`, `union`, `sort`) over
//!   preorder-sorted entry lists.
//! * [`direct`] — algorithm `primary` (Section 6.5, Figure 4): direct
//!   evaluation of an expanded query against the data-tree indexes,
//!   finding the images of *all* approximate embeddings bottom-up, with
//!   memoization of shared (deletion-bridged) subtrees.
//! * [`topk`] — the adapted, segment-based top-k list operations of
//!   Section 7.2, which run the same algorithm against the *schema* to
//!   produce the best *k* second-level queries.
//! * [`secondary`] — algorithm `secondary` (Section 7.3, Figure 5):
//!   executing second-level queries against the path-dependent index.
//! * [`schema_eval`] — the incremental best-n driver (Section 7.4,
//!   Figure 6) combining the two.
//! * [`mod@reference`] — a deliberately naive oracle evaluator (explicit
//!   closure enumeration + brute-force embedding search) used by the
//!   property-test suite to validate both fast paths.
//! * [`Database`] — the user-facing facade tying documents, cost model,
//!   indexes, and schema together.
//!
//! ## The leaf rule
//!
//! Definition 4 restricts leaf deletions; the paper's "full version" of
//! `primary` enforces it by rejecting "data subtrees that do not contain
//! matches of any query leaf". We implement exactly that rule: every list
//! entry carries two cost channels — the best embedding cost overall
//! (`cost_any`) and the best cost among embeddings that match at least one
//! original query leaf (`cost_leaf`) — and results are ranked by
//! `cost_leaf` unless [`EvalOptions::enforce_leaf_match`] is switched off.

pub mod database;
pub mod dbfile;
pub mod direct;
pub mod list;
pub mod reference;
pub mod schema_eval;
pub mod secondary;
pub mod topk;

pub use approxql_query::{QueryInput, Surface};
pub use approxql_storage::CheckReport;
pub use database::{Database, DatabaseError, MutationDelta, QueryHit};
pub use dbfile::DbFile;
pub use direct::{DirectStats, EvalOptions};
pub use reference::ReferenceEvaluator;
pub use schema_eval::{EvalStats, ResultStream, SchemaEvalConfig};
