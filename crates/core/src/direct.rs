//! Algorithm `primary` (Section 6.5, Figure 4): direct evaluation.
//!
//! The evaluator walks the expanded query representation bottom-up and
//! computes, for every query node and every candidate data node, the best
//! embedding cost of the query subtree — entirely through the list algebra
//! of [`crate::list`]. The full version's two refinements are included:
//!
//! * **Leaf rule** — entries track a second cost channel for embeddings
//!   that match at least one original query leaf (see crate docs).
//! * **Dynamic programming** — deletion `or`s share their bridged subtree
//!   in the expanded DAG; evaluation results are memoized per
//!   `(query node, ancestor list identity)`, and the pending edge cost is
//!   applied as a *post-shift* so it does not fragment the memo key.

use crate::list::{self, List};
use approxql_exec::{Executor, OnceMap, Scope};
use approxql_index::LabelIndex;
use approxql_metrics::{time, Metric, TimerMetric};
use approxql_query::expand::{ExpandedNode, ExpandedQuery};
use approxql_tree::{Cost, Interner, LabelId, NodeType};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Evaluation options shared by the direct and schema-driven algorithms.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Enforce the leaf rule: results must match at least one original
    /// query leaf (the paper's full version). Default `true`.
    pub enforce_leaf_match: bool,
    /// Memoize shared subtree evaluations (the paper's dynamic
    /// programming). Default `true`; switchable for the ablation bench.
    pub use_memo: bool,
    /// Use the literal O(s·l)-style join formulation instead of the
    /// fold-on-pop structural merge (ablation). Default `false`.
    pub use_paper_joins: bool,
    /// Worker threads for the evaluation. 1 (the default, unless the
    /// `APPROXQL_THREADS` environment variable overrides it) runs the
    /// sequential path; `N > 1` fans independent subtree evaluations out
    /// over a work-stealing pool with identical results and counters.
    pub threads: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            enforce_leaf_match: true,
            use_memo: true,
            use_paper_joins: false,
            threads: approxql_exec::threads_from_env().unwrap_or(1),
        }
    }
}

/// Counters describing one direct evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectStats {
    /// Number of index fetches.
    pub fetches: usize,
    /// Total entries produced by all list operations.
    pub list_entries: usize,
    /// Number of list operations executed.
    pub ops: usize,
    /// Memoization hits (shared subtree evaluations avoided).
    pub memo_hits: usize,
}

/// A list with a stable identity (for memo keys).
struct LRef {
    id: u64,
    list: List,
}

struct Evaluator<'a> {
    ex: &'a ExpandedQuery,
    index: &'a LabelIndex,
    interner: &'a Interner,
    opts: EvalOptions,
    memo: OnceMap<(usize, u64), Arc<LRef>>,
    /// Fetched candidate lists per `(type, label, is_leaf)`. Sharing the
    /// list identity is what makes the `(query node, ancestor list)` memo
    /// effective: both branches of a deletion `or` see the same lists —
    /// and repeated renaming occurrences of the same label fetch once.
    fetch_cache: OnceMap<(NodeType, String, bool), Arc<LRef>>,
    next_id: AtomicU64,
    fetches: AtomicUsize,
    list_entries: AtomicUsize,
    ops: AtomicUsize,
    memo_hits: AtomicUsize,
}

impl<'a> Evaluator<'a> {
    fn wrap(&self, list: List) -> Arc<LRef> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.list_entries.fetch_add(list.len(), Ordering::Relaxed);
        self.ops.fetch_add(1, Ordering::Relaxed);
        Arc::new(LRef { id, list })
    }

    fn lookup(&self, label: &str) -> Option<LabelId> {
        self.interner.get(label)
    }

    fn fetch(&self, label: &str, ty: NodeType, is_leaf: bool) -> List {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        Metric::EvalDirectFetches.incr();
        match self.lookup(label) {
            Some(id) => list::fetch(self.index, ty, id, is_leaf),
            None => Vec::new(),
        }
    }

    /// Fetches with a stable list identity (see `fetch_cache`). Each
    /// `(type, label, is_leaf)` posting is fetched from the index exactly
    /// once per evaluation, at any thread count.
    fn fetch_cached(&self, label: &str, ty: NodeType, is_leaf: bool) -> Arc<LRef> {
        let key = (ty, label.to_owned(), is_leaf);
        let (wrapped, _hit) = self
            .fetch_cache
            .get_or_compute(key, || self.wrap(self.fetch(label, ty, is_leaf)));
        wrapped
    }

    /// The leaf/node candidate list: the original label's posting merged
    /// with all renamed labels' postings (rename costs applied). Goes
    /// through the fetch memo, so a label that occurs in several renaming
    /// sets (or as both an original and a renaming) is fetched once.
    fn fetch_with_renamings(
        &self,
        label: &str,
        ty: NodeType,
        renamings: &[(String, Cost)],
        is_leaf: bool,
    ) -> List {
        let mut l = self.fetch_cached(label, ty, is_leaf).list.clone();
        for (ren, c_ren) in renamings {
            let lt = self.fetch_cached(ren, ty, is_leaf);
            l = list::merge(&l, &lt.list, *c_ren);
        }
        l
    }

    fn join(&self, ancestors: &List, descendants: &List) -> List {
        if self.opts.use_paper_joins {
            list::join_paper(ancestors, descendants, Cost::ZERO)
        } else {
            list::join(ancestors, descendants, Cost::ZERO)
        }
    }

    fn outerjoin(&self, ancestors: &List, descendants: &List, c_del: Cost) -> List {
        if self.opts.use_paper_joins {
            list::outerjoin_paper(ancestors, descendants, Cost::ZERO, c_del)
        } else {
            list::outerjoin(ancestors, descendants, Cost::ZERO, c_del)
        }
    }

    /// Evaluates the child subtree below every ancestor candidate list in
    /// `ancs` (the original label's plus one per renaming) — in parallel
    /// when the scope has workers — and merges the results in renaming
    /// order, which keeps the outcome deterministic.
    fn eval_under_renamings<'s>(
        &'s self,
        child: usize,
        ancs: Vec<Arc<LRef>>,
        renamings: &[(String, Cost)],
        scope: &Scope<'s>,
    ) -> List {
        let sc = scope.clone();
        let evals = scope.map(ancs, move |a: Arc<LRef>| self.eval(child, &a, &sc));
        let mut res = evals[0].list.clone();
        for ((_, c_ren), lt_res) in renamings.iter().zip(&evals[1..]) {
            res = list::merge(&res, &lt_res.list, *c_ren);
        }
        res
    }

    /// The ancestor candidate lists for a `Node`: the original label's
    /// posting followed by each renaming's, all identity-shared.
    fn ancestor_lists(
        &self,
        label: &str,
        ty: NodeType,
        renamings: &[(String, Cost)],
    ) -> Vec<Arc<LRef>> {
        let mut ancs = Vec::with_capacity(1 + renamings.len());
        ancs.push(self.fetch_cached(label, ty, false));
        for (ren, _) in renamings {
            ancs.push(self.fetch_cached(ren, ty, false));
        }
        ancs
    }

    /// Evaluates query node `u` against ancestor candidates `anc`,
    /// returning a list over (copies of) the ancestors whose costs are the
    /// best embedding costs of `u`'s subtree below each ancestor. Edge
    /// costs are *not* applied here — callers shift afterwards, keeping
    /// the memo key independent of the incoming edge.
    fn eval<'s>(&'s self, u: usize, anc: &Arc<LRef>, scope: &Scope<'s>) -> Arc<LRef> {
        if self.opts.use_memo {
            let (wrapped, hit) = self
                .memo
                .get_or_compute((u, anc.id), || self.eval_uncached(u, anc, scope));
            if hit {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                Metric::EvalMemoHits.incr();
            }
            wrapped
        } else {
            self.eval_uncached(u, anc, scope)
        }
    }

    fn eval_uncached<'s>(&'s self, u: usize, anc: &Arc<LRef>, scope: &Scope<'s>) -> Arc<LRef> {
        let result = match &self.ex.nodes[u] {
            ExpandedNode::Leaf {
                label,
                ty,
                renamings,
                delcost,
            } => {
                let ld = self.fetch_with_renamings(label, *ty, renamings, true);
                self.outerjoin(&anc.list, &ld, *delcost)
            }
            ExpandedNode::Node {
                label,
                ty,
                renamings,
                child,
            } => {
                let ancs = self.ancestor_lists(label, *ty, renamings);
                let res = self.eval_under_renamings(*child, ancs, renamings, scope);
                self.join(&anc.list, &res)
            }
            ExpandedNode::And { left, right } => {
                let (sc, anc2) = (scope.clone(), Arc::clone(anc));
                let evals = scope.map(vec![*left, *right], move |v| self.eval(v, &anc2, &sc));
                list::intersect(&evals[0].list, &evals[1].list, Cost::ZERO)
            }
            ExpandedNode::Or {
                left,
                right,
                edgecost,
            } => {
                let (sc, anc2) = (scope.clone(), Arc::clone(anc));
                let evals = scope.map(vec![*left, *right], move |v| self.eval(v, &anc2, &sc));
                let shifted = list::shift(evals[1].list.clone(), *edgecost);
                list::union(&evals[0].list, &shifted, Cost::ZERO)
            }
        };
        self.wrap(result)
    }

    /// Top-level evaluation: the root is never joined with an ancestor
    /// list (Figure 4's "if u has no parent then return L_D").
    fn eval_root<'s>(&'s self, scope: &Scope<'s>) -> List {
        match &self.ex.nodes[self.ex.root] {
            ExpandedNode::Leaf {
                label,
                ty,
                renamings,
                ..
            } => {
                // A bare-selector query: candidates with zero cost (plus
                // rename costs); the root leaf is never deletable.
                self.fetch_with_renamings(label, *ty, renamings, true)
            }
            ExpandedNode::Node {
                label,
                ty,
                renamings,
                child,
            } => {
                let ancs = self.ancestor_lists(label, *ty, renamings);
                self.eval_under_renamings(*child, ancs, renamings, scope)
            }
            other => unreachable!("query root must be a selector, got {other:?}"),
        }
    }

    fn stats(&self) -> DirectStats {
        DirectStats {
            fetches: self.fetches.load(Ordering::Relaxed),
            list_entries: self.list_entries.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
        }
    }
}

/// Runs algorithm `primary` against the data indexes, returning the list of
/// all embedding roots with their cost channels plus evaluation counters.
pub fn evaluate(
    expanded: &ExpandedQuery,
    index: &LabelIndex,
    interner: &Interner,
    opts: EvalOptions,
) -> (List, DirectStats) {
    Metric::EvalDirectRuns.incr();
    let _timer = time(TimerMetric::EvalDirect);
    let ev = Evaluator {
        ex: expanded,
        index,
        interner,
        opts,
        memo: OnceMap::new(),
        fetch_cache: OnceMap::new(),
        next_id: AtomicU64::new(0),
        fetches: AtomicUsize::new(0),
        list_entries: AtomicUsize::new(0),
        ops: AtomicUsize::new(0),
        memo_hits: AtomicUsize::new(0),
    };
    let result = Executor::new(opts.threads).scope(|scope| ev.eval_root(scope));
    ev.list_entries.fetch_add(result.len(), Ordering::Relaxed);
    (result, ev.stats())
}

/// The best-n-pairs problem (Definition 12) by direct evaluation: find all
/// results, sort, prune after `n` (`None` = all results).
pub fn best_n(
    expanded: &ExpandedQuery,
    index: &LabelIndex,
    interner: &Interner,
    n: Option<usize>,
    opts: EvalOptions,
) -> (Vec<(u32, Cost)>, DirectStats) {
    let (result, stats) = evaluate(expanded, index, interner, opts);
    (list::sort_best(n, &result, opts.enforce_leaf_match), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_cost::tables::paper_section6_costs;
    use approxql_cost::CostModel;
    use approxql_query::parse_query;
    use approxql_tree::{DataTree, DataTreeBuilder};

    /// The catalog of Figure 1/3: two sound-storage entries.
    ///
    /// ```text
    /// root
    /// ├── cd                      (pre 1)
    /// │   ├── title               (pre 2): "piano" "concerto"
    /// │   └── composer            (pre 5): "rachmaninov"
    /// └── cd                      (pre 7)
    ///     ├── title               (pre 8): "kinderszenen"
    ///     └── tracks              (pre 10)
    ///         └── track           (pre 11)
    ///             ├── title       (pre 12): "vivace"  [as Fig. 3]
    ///             └── ...
    /// ```
    fn catalog(costs: &CostModel) -> DataTree {
        let mut b = DataTreeBuilder::new();
        b.begin_struct("cd"); // 1
        b.begin_struct("title"); // 2
        b.add_text("piano concerto"); // 3 4
        b.end();
        b.begin_struct("composer"); // 5
        b.add_text("rachmaninov"); // 6
        b.end();
        b.end();
        b.begin_struct("cd"); // 7
        b.begin_struct("title"); // 8
        b.add_text("kinderszenen"); // 9
        b.end();
        b.begin_struct("tracks"); // 10
        b.begin_struct("track"); // 11
        b.begin_struct("title"); // 12
        b.add_text("vivace piano"); // 13 14
        b.end();
        b.end();
        b.end();
        b.end();
        b.build(costs)
    }

    fn run(query: &str, costs: &CostModel, tree: &DataTree, n: Option<usize>) -> Vec<(u32, Cost)> {
        let q = parse_query(query).unwrap();
        let ex = ExpandedQuery::build(&q, costs);
        let index = LabelIndex::build(tree);
        best_n(&ex, &index, tree.interner(), n, EvalOptions::default()).0
    }

    #[test]
    fn exact_match_costs_zero() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run(
            r#"cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#,
            &costs,
            &tree,
            None,
        );
        assert_eq!(hits[0], (1, Cost::ZERO));
    }

    #[test]
    fn second_cd_matches_approximately() {
        // For cd[title["piano"]], cd#7 matches via the track title with
        // insertions of tracks (1) and track (1): cost 2.
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run(r#"cd[title["piano"]]"#, &costs, &tree, None);
        assert_eq!(hits, vec![(1, Cost::ZERO), (7, Cost::finite(2))]);
    }

    #[test]
    fn leaf_deletion_uses_outerjoin() {
        // cd#7's title has no "concerto": the leaf is deleted (cost 6).
        // The embedding goes through the direct title (pre 8).
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run(r#"cd[title["piano" and "concerto"]]"#, &costs, &tree, None);
        assert_eq!(hits[0], (1, Cost::ZERO));
        // cd#7: "piano" matches in track title (distance 2), "concerto"
        // deleted (6): total 8.
        assert_eq!(hits[1], (7, Cost::finite(8)));
    }

    #[test]
    fn all_leaves_deleted_is_rejected() {
        // Query where the only leaf has a finite delete cost: results must
        // still match the leaf (leaf rule).
        let costs = CostModel::builder()
            .delete(NodeType::Text, "nonexistent", Cost::finite(1))
            .build();
        let tree = catalog(&costs);
        let hits = run(r#"cd[title["nonexistent"]]"#, &costs, &tree, None);
        assert!(hits.is_empty());
        // Without the leaf rule both CDs come back via deletion.
        let q = parse_query(r#"cd[title["nonexistent"]]"#).unwrap();
        let ex = ExpandedQuery::build(&q, &costs);
        let index = LabelIndex::build(&tree);
        let opts = EvalOptions {
            enforce_leaf_match: false,
            ..Default::default()
        };
        let (hits, _) = best_n(&ex, &index, tree.interner(), None, opts);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1, Cost::finite(1));
    }

    #[test]
    fn root_renaming_shifts_search_space() {
        let costs = CostModel::builder()
            .rename(NodeType::Struct, "dvd", "cd", Cost::finite(4))
            .build();
        let tree = catalog(&costs);
        // dvd[title["piano"]]: no dvd exists, but renaming dvd -> cd (4).
        let hits = run(r#"dvd[title["piano"]]"#, &costs, &tree, None);
        assert_eq!(hits[0], (1, Cost::finite(4)));
    }

    #[test]
    fn inner_node_deletion_bridges() {
        // cd[track[title["vivace"]]]: exact on cd#7. Deleting `track`
        // (cost 3) would search title["vivace"] directly under cd — the
        // only vivace-title sits under tracks/track, so the exact match
        // (cost 0) wins; make deletion observable with a query whose track
        // context does not exist.
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run(
            r#"cd[track[title["piano" and "concerto"]]]"#,
            &costs,
            &tree,
            None,
        );
        // cd#1: track deleted (3), then title["piano" and "concerto"]
        // matches exactly below cd#1: total 3.
        assert_eq!(hits[0], (1, Cost::finite(3)));
    }

    #[test]
    fn or_queries_take_the_cheaper_branch() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run(
            r#"cd[title["concerto" or "kinderszenen"]]"#,
            &costs,
            &tree,
            None,
        );
        assert_eq!(hits, vec![(1, Cost::ZERO), (7, Cost::ZERO)]);
    }

    #[test]
    fn text_renaming_applies() {
        // "sonata" matches nothing; renamed to "concerto" -> wait, the
        // model renames concerto -> sonata, so query "concerto" can become
        // "sonata" — query for a sonata CD instead:
        let costs = CostModel::builder()
            .rename(NodeType::Text, "sonata", "concerto", Cost::finite(3))
            .build();
        let tree = catalog(&costs);
        let hits = run(r#"cd[title["sonata"]]"#, &costs, &tree, None);
        assert_eq!(hits[0], (1, Cost::finite(3)));
    }

    #[test]
    fn bare_root_query_returns_all_instances() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run("cd", &costs, &tree, None);
        assert_eq!(hits, vec![(1, Cost::ZERO), (7, Cost::ZERO)]);
    }

    #[test]
    fn struct_leaf_query() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        // cd[tracks]: only cd#7 has a tracks element.
        let hits = run("cd[tracks]", &costs, &tree, None);
        assert_eq!(hits, vec![(7, Cost::ZERO)]);
    }

    #[test]
    fn best_n_truncates_sorted_results() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let all = run(r#"cd[title["piano"]]"#, &costs, &tree, None);
        let top1 = run(r#"cd[title["piano"]]"#, &costs, &tree, Some(1));
        assert_eq!(top1.as_slice(), &all[..1]);
    }

    #[test]
    fn unknown_labels_yield_no_results() {
        let costs = CostModel::new();
        let tree = catalog(&costs);
        assert!(run(r#"zzz["nope"]"#, &costs, &tree, None).is_empty());
    }

    #[test]
    fn memoization_hits_on_deletion_bridges() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let q = parse_query(r#"cd[track[title["piano"]]]"#).unwrap();
        let ex = ExpandedQuery::build(&q, &costs);
        let index = LabelIndex::build(&tree);
        let (_, stats) = evaluate(&ex, &index, tree.interner(), EvalOptions::default());
        // The bridged subtree below the deletable `track` and `title`
        // nodes is shared; at least one evaluation must be saved.
        assert!(stats.memo_hits > 0, "expected memo hits, got {stats:?}");
        // Results identical without memoization.
        let opts = EvalOptions {
            use_memo: false,
            ..Default::default()
        };
        let (with_memo, _) = best_n(&ex, &index, tree.interner(), None, EvalOptions::default());
        let (without_memo, stats2) = best_n(&ex, &index, tree.interner(), None, opts);
        assert_eq!(with_memo, without_memo);
        assert_eq!(stats2.memo_hits, 0);
    }

    #[test]
    fn paper_joins_agree_with_fast_joins() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let q =
            parse_query(r#"cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]]"#)
                .unwrap();
        let ex = ExpandedQuery::build(&q, &costs);
        let index = LabelIndex::build(&tree);
        let fast = best_n(&ex, &index, tree.interner(), None, EvalOptions::default()).0;
        let slow = best_n(
            &ex,
            &index,
            tree.interner(),
            None,
            EvalOptions {
                use_paper_joins: true,
                ..Default::default()
            },
        )
        .0;
        assert_eq!(fast, slow);
    }

    #[test]
    fn figure2_query_full_evaluation() {
        // The Figure 2 query against the catalog: cd#1 embeds by deleting
        // track (3): title/piano/concerto + composer/rachmaninov all match
        // directly. cd#7 matches the track context but pays for missing
        // words/composer.
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run(
            r#"cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]]"#,
            &costs,
            &tree,
            None,
        );
        assert_eq!(hits[0], (1, Cost::finite(3)));
        // cd#7 cannot embed the composer branch at all: it has no composer
        // (and the leaf "rachmaninov" is not deletable), so deleting the
        // inner `composer` node still leaves nowhere for the word to match.
        assert_eq!(hits.len(), 1);
    }
}
