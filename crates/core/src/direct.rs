//! Algorithm `primary` (Section 6.5, Figure 4): direct evaluation.
//!
//! The expanded query is compiled once into the physical-plan IR of
//! [`approxql_plan`] — an operator DAG whose common-subexpression pass
//! plays the role of the paper's dynamic programming (deletion `or`s and
//! renaming expansions share their bridged subtrees structurally instead
//! of through a per-run memo) — and then executed against the label index
//! through the Section 6 list algebra of [`crate::list`]. The full
//! version's two refinements are included:
//!
//! * **Leaf rule** — entries track a second cost channel for embeddings
//!   that match at least one original query leaf (see crate docs).
//! * **Subplan sharing** — structurally identical subplans compile to one
//!   DAG node and execute exactly once; pending edge costs are applied as
//!   a *post-shift* so they do not fragment the shared structure.

use crate::list::{self, LazyList, List};
use approxql_index::LabelIndex;
use approxql_metrics::{time, Metric, TimerMetric};
use approxql_plan::{self as plan, Plan, PlanAlgebra};
use approxql_query::expand::ExpandedQuery;
use approxql_tree::{Cost, Interner, NodeType};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Evaluation options shared by the direct and schema-driven algorithms.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Enforce the leaf rule: results must match at least one original
    /// query leaf (the paper's full version). Default `true`.
    pub enforce_leaf_match: bool,
    /// Worker threads for the evaluation. 1 (the default, unless the
    /// `APPROXQL_THREADS` environment variable overrides it) runs the
    /// sequential path; `N > 1` fans independent plan-DAG waves out over
    /// a work-stealing pool with identical results and counters.
    pub threads: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            enforce_leaf_match: true,
            threads: approxql_exec::threads_from_env().unwrap_or(1),
        }
    }
}

/// Counters describing one direct evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectStats {
    /// Number of index fetches.
    pub fetches: usize,
    /// Total entries produced by all list operations.
    pub list_entries: usize,
    /// Number of physical operators executed.
    pub ops: usize,
    /// Structurally shared subplans merged by the compiler's CSE pass
    /// (each one a subtree evaluation avoided at execution time).
    pub cse_reuses: usize,
}

/// The Section 6.4 list algebra over the data indexes: the backend the
/// compiled plan executes against for direct evaluation.
struct IndexAlgebra<'a> {
    index: &'a LabelIndex,
    interner: &'a Interner,
    fetches: AtomicUsize,
}

/// Fetches stay compressed ([`LazyList::Blocks`]): the skip-based join /
/// intersect variants consult the skip headers and decode only frames
/// that can contribute output (DESIGN.md §14). Every operator output is
/// materialized, so laziness never nests.
impl<'a> PlanAlgebra for IndexAlgebra<'a> {
    type L = LazyList<'a>;

    fn empty(&self) -> LazyList<'a> {
        LazyList::Mat(Vec::new())
    }

    fn fetch(&self, label: &str, ty: NodeType, is_leaf: bool) -> LazyList<'a> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        Metric::EvalDirectFetches.incr();
        match self.interner.get(label) {
            Some(id) => list::fetch_lazy(self.index, ty, id, is_leaf),
            None => LazyList::Mat(Vec::new()),
        }
    }

    fn shift(&self, l: &LazyList<'a>, cost: Cost) -> LazyList<'a> {
        LazyList::Mat(list::shift(l.force().into_owned(), cost))
    }

    fn merge(&self, l: &LazyList<'a>, r: &LazyList<'a>, c_ren: Cost) -> LazyList<'a> {
        LazyList::Mat(list::merge(&l.force(), &r.force(), c_ren))
    }

    fn join(&self, anc: &LazyList<'a>, desc: &LazyList<'a>) -> LazyList<'a> {
        LazyList::Mat(list::join_lazy(anc, desc, Cost::ZERO))
    }

    fn outerjoin(&self, anc: &LazyList<'a>, desc: &LazyList<'a>, delcost: Cost) -> LazyList<'a> {
        LazyList::Mat(list::outerjoin_lazy(anc, desc, Cost::ZERO, delcost))
    }

    fn intersect(&self, l: &LazyList<'a>, r: &LazyList<'a>) -> LazyList<'a> {
        LazyList::Mat(list::intersect_lazy(l, r, Cost::ZERO))
    }

    fn union(&self, l: &LazyList<'a>, r: &LazyList<'a>) -> LazyList<'a> {
        LazyList::Mat(list::union(&l.force(), &r.force(), Cost::ZERO))
    }

    fn len(l: &LazyList<'a>) -> usize {
        l.len()
    }
}

/// Executes a compiled plan against the data indexes, returning the root
/// list, evaluation counters, and the per-operator output entry counts
/// (indexed by plan handle; the terminal `SortBest` slot stays 0).
pub fn evaluate_plan_counted(
    plan: &Plan,
    index: &LabelIndex,
    interner: &Interner,
    opts: EvalOptions,
) -> (List, DirectStats, Vec<u64>) {
    Metric::EvalDirectRuns.incr();
    let _timer = time(TimerMetric::EvalDirect);
    let alg = IndexAlgebra {
        index,
        interner,
        fetches: AtomicUsize::new(0),
    };
    let slots = plan::execute(plan, &alg, opts.threads);
    let counts: Vec<u64> = slots
        .iter()
        .map(|s| s.get().map_or(0, |l| l.len() as u64))
        .collect();
    let result = slots
        .get(plan.root_list())
        .and_then(|s| s.get())
        .map(|l| l.force().into_owned())
        .unwrap_or_default();
    let executed: usize = plan.waves().iter().map(|w| w.len()).sum();
    let stats = DirectStats {
        fetches: alg.fetches.load(Ordering::Relaxed),
        list_entries: counts.iter().sum::<u64>() as usize + result.len(),
        ops: executed,
        cse_reuses: plan.cse_reuses() as usize,
    };
    (result, stats, counts)
}

/// Executes a compiled plan against the data indexes.
pub fn evaluate_plan(
    plan: &Plan,
    index: &LabelIndex,
    interner: &Interner,
    opts: EvalOptions,
) -> (List, DirectStats) {
    let (result, stats, _) = evaluate_plan_counted(plan, index, interner, opts);
    (result, stats)
}

/// Runs algorithm `primary` against the data indexes, returning the list of
/// all embedding roots with their cost channels plus evaluation counters.
///
/// Compiles the expanded query on the spot; callers holding a cached
/// [`Plan`] (see `Database`) use [`evaluate_plan`] instead. An expanded
/// query whose root is not a selector cannot be produced by the parser and
/// evaluates to no results.
pub fn evaluate(
    expanded: &ExpandedQuery,
    index: &LabelIndex,
    interner: &Interner,
    opts: EvalOptions,
) -> (List, DirectStats) {
    match plan::compile(expanded) {
        Ok(p) => evaluate_plan(&p, index, interner, opts),
        Err(_) => (Vec::new(), DirectStats::default()),
    }
}

/// The best-n-pairs problem (Definition 12) by direct evaluation: find all
/// results, sort, prune after `n` (`None` = all results).
pub fn best_n(
    expanded: &ExpandedQuery,
    index: &LabelIndex,
    interner: &Interner,
    n: Option<usize>,
    opts: EvalOptions,
) -> (Vec<(u32, Cost)>, DirectStats) {
    let (result, stats) = evaluate(expanded, index, interner, opts);
    (list::sort_best(n, &result, opts.enforce_leaf_match), stats)
}

/// [`best_n`] over a pre-compiled plan (the `Database` plan-cache path).
pub fn best_n_plan(
    plan: &Plan,
    index: &LabelIndex,
    interner: &Interner,
    n: Option<usize>,
    opts: EvalOptions,
) -> (Vec<(u32, Cost)>, DirectStats) {
    let (result, stats) = evaluate_plan(plan, index, interner, opts);
    (list::sort_best(n, &result, opts.enforce_leaf_match), stats)
}

/// Renders a compiled plan with per-operator output entry counts from one
/// execution against the data indexes (the `--explain` backend). The
/// terminal `SortBest` line carries the final result count for `n`.
pub fn explain(
    plan: &Plan,
    index: &LabelIndex,
    interner: &Interner,
    n: Option<usize>,
    opts: EvalOptions,
) -> String {
    let (result, _, mut counts) = evaluate_plan_counted(plan, index, interner, opts);
    let sorted = list::sort_best(n, &result, opts.enforce_leaf_match);
    if let Some(c) = counts.get_mut(plan.result()) {
        *c = sorted.len() as u64;
    }
    plan::render(plan, Some(&counts))
}

/// [`explain`] with JSON output: the plan DAG plus its shape fingerprint
/// (`approxql query --explain --format json`), annotated with the same
/// per-operator entry counts.
pub fn explain_json(
    plan: &Plan,
    index: &LabelIndex,
    interner: &Interner,
    n: Option<usize>,
    opts: EvalOptions,
) -> String {
    let (result, _, mut counts) = evaluate_plan_counted(plan, index, interner, opts);
    let sorted = list::sort_best(n, &result, opts.enforce_leaf_match);
    if let Some(c) = counts.get_mut(plan.result()) {
        *c = sorted.len() as u64;
    }
    plan::render_json(plan, Some(&counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_cost::tables::paper_section6_costs;
    use approxql_cost::CostModel;
    use approxql_query::parse_query;
    use approxql_tree::{DataTree, DataTreeBuilder};

    /// The catalog of Figure 1/3: two sound-storage entries.
    ///
    /// ```text
    /// root
    /// ├── cd                      (pre 1)
    /// │   ├── title               (pre 2): "piano" "concerto"
    /// │   └── composer            (pre 5): "rachmaninov"
    /// └── cd                      (pre 7)
    ///     ├── title               (pre 8): "kinderszenen"
    ///     └── tracks              (pre 10)
    ///         └── track           (pre 11)
    ///             ├── title       (pre 12): "vivace"  [as Fig. 3]
    ///             └── ...
    /// ```
    fn catalog(costs: &CostModel) -> DataTree {
        let mut b = DataTreeBuilder::new();
        b.begin_struct("cd"); // 1
        b.begin_struct("title"); // 2
        b.add_text("piano concerto"); // 3 4
        b.end();
        b.begin_struct("composer"); // 5
        b.add_text("rachmaninov"); // 6
        b.end();
        b.end();
        b.begin_struct("cd"); // 7
        b.begin_struct("title"); // 8
        b.add_text("kinderszenen"); // 9
        b.end();
        b.begin_struct("tracks"); // 10
        b.begin_struct("track"); // 11
        b.begin_struct("title"); // 12
        b.add_text("vivace piano"); // 13 14
        b.end();
        b.end();
        b.end();
        b.end();
        b.build(costs)
    }

    fn run(query: &str, costs: &CostModel, tree: &DataTree, n: Option<usize>) -> Vec<(u32, Cost)> {
        let q = parse_query(query).unwrap();
        let ex = ExpandedQuery::build(&q, costs);
        let index = LabelIndex::build(tree);
        best_n(&ex, &index, tree.interner(), n, EvalOptions::default()).0
    }

    #[test]
    fn exact_match_costs_zero() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run(
            r#"cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#,
            &costs,
            &tree,
            None,
        );
        assert_eq!(hits[0], (1, Cost::ZERO));
    }

    #[test]
    fn second_cd_matches_approximately() {
        // For cd[title["piano"]], cd#7 matches via the track title with
        // insertions of tracks (1) and track (1): cost 2.
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run(r#"cd[title["piano"]]"#, &costs, &tree, None);
        assert_eq!(hits, vec![(1, Cost::ZERO), (7, Cost::finite(2))]);
    }

    #[test]
    fn leaf_deletion_uses_outerjoin() {
        // cd#7's title has no "concerto": the leaf is deleted (cost 6).
        // The embedding goes through the direct title (pre 8).
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run(r#"cd[title["piano" and "concerto"]]"#, &costs, &tree, None);
        assert_eq!(hits[0], (1, Cost::ZERO));
        // cd#7: "piano" matches in track title (distance 2), "concerto"
        // deleted (6): total 8.
        assert_eq!(hits[1], (7, Cost::finite(8)));
    }

    #[test]
    fn all_leaves_deleted_is_rejected() {
        // Query where the only leaf has a finite delete cost: results must
        // still match the leaf (leaf rule).
        let costs = CostModel::builder()
            .delete(NodeType::Text, "nonexistent", Cost::finite(1))
            .build();
        let tree = catalog(&costs);
        let hits = run(r#"cd[title["nonexistent"]]"#, &costs, &tree, None);
        assert!(hits.is_empty());
        // Without the leaf rule both CDs come back via deletion.
        let q = parse_query(r#"cd[title["nonexistent"]]"#).unwrap();
        let ex = ExpandedQuery::build(&q, &costs);
        let index = LabelIndex::build(&tree);
        let opts = EvalOptions {
            enforce_leaf_match: false,
            ..Default::default()
        };
        let (hits, _) = best_n(&ex, &index, tree.interner(), None, opts);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1, Cost::finite(1));
    }

    #[test]
    fn root_renaming_shifts_search_space() {
        let costs = CostModel::builder()
            .rename(NodeType::Struct, "dvd", "cd", Cost::finite(4))
            .build();
        let tree = catalog(&costs);
        // dvd[title["piano"]]: no dvd exists, but renaming dvd -> cd (4).
        let hits = run(r#"dvd[title["piano"]]"#, &costs, &tree, None);
        assert_eq!(hits[0], (1, Cost::finite(4)));
    }

    #[test]
    fn inner_node_deletion_bridges() {
        // cd[track[title["vivace"]]]: exact on cd#7. Deleting `track`
        // (cost 3) would search title["vivace"] directly under cd — the
        // only vivace-title sits under tracks/track, so the exact match
        // (cost 0) wins; make deletion observable with a query whose track
        // context does not exist.
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run(
            r#"cd[track[title["piano" and "concerto"]]]"#,
            &costs,
            &tree,
            None,
        );
        // cd#1: track deleted (3), then title["piano" and "concerto"]
        // matches exactly below cd#1: total 3.
        assert_eq!(hits[0], (1, Cost::finite(3)));
    }

    #[test]
    fn or_queries_take_the_cheaper_branch() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run(
            r#"cd[title["concerto" or "kinderszenen"]]"#,
            &costs,
            &tree,
            None,
        );
        assert_eq!(hits, vec![(1, Cost::ZERO), (7, Cost::ZERO)]);
    }

    #[test]
    fn text_renaming_applies() {
        // "sonata" matches nothing; renamed to "concerto" -> wait, the
        // model renames concerto -> sonata, so query "concerto" can become
        // "sonata" — query for a sonata CD instead:
        let costs = CostModel::builder()
            .rename(NodeType::Text, "sonata", "concerto", Cost::finite(3))
            .build();
        let tree = catalog(&costs);
        let hits = run(r#"cd[title["sonata"]]"#, &costs, &tree, None);
        assert_eq!(hits[0], (1, Cost::finite(3)));
    }

    #[test]
    fn bare_root_query_returns_all_instances() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run("cd", &costs, &tree, None);
        assert_eq!(hits, vec![(1, Cost::ZERO), (7, Cost::ZERO)]);
    }

    #[test]
    fn struct_leaf_query() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        // cd[tracks]: only cd#7 has a tracks element.
        let hits = run("cd[tracks]", &costs, &tree, None);
        assert_eq!(hits, vec![(7, Cost::ZERO)]);
    }

    #[test]
    fn best_n_truncates_sorted_results() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let all = run(r#"cd[title["piano"]]"#, &costs, &tree, None);
        let top1 = run(r#"cd[title["piano"]]"#, &costs, &tree, Some(1));
        assert_eq!(top1.as_slice(), &all[..1]);
    }

    #[test]
    fn unknown_labels_yield_no_results() {
        let costs = CostModel::new();
        let tree = catalog(&costs);
        assert!(run(r#"zzz["nope"]"#, &costs, &tree, None).is_empty());
    }

    #[test]
    fn cse_shares_deletion_bridges() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let q = parse_query(r#"cd[track[title["piano"]]]"#).unwrap();
        let ex = ExpandedQuery::build(&q, &costs);
        let index = LabelIndex::build(&tree);
        let (_, stats) = evaluate(&ex, &index, tree.interner(), EvalOptions::default());
        // The bridged subtree below the deletable `track` and `title`
        // nodes is shared; at least one subplan must be merged by CSE.
        assert!(stats.cse_reuses > 0, "expected CSE reuses, got {stats:?}");
        // A pre-compiled plan evaluates identically to the compile-on-use
        // path at every thread count.
        let p = approxql_plan::compile(&ex).unwrap();
        let baseline = best_n(&ex, &index, tree.interner(), None, EvalOptions::default()).0;
        for threads in [1, 2, 4] {
            let opts = EvalOptions {
                threads,
                ..Default::default()
            };
            let (hits, _) = best_n_plan(&p, &index, tree.interner(), None, opts);
            assert_eq!(hits, baseline, "thread count {threads} diverged");
        }
    }

    #[test]
    fn explain_renders_counts_and_sharing() {
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let q = parse_query(r#"cd[track[title["piano"]]]"#).unwrap();
        let ex = ExpandedQuery::build(&q, &costs);
        let index = LabelIndex::build(&tree);
        let p = approxql_plan::compile(&ex).unwrap();
        let text = explain(
            &p,
            &index,
            tree.interner(),
            Some(10),
            EvalOptions::default(),
        );
        assert!(text.contains("sort_best"), "missing root op:\n{text}");
        assert!(text.contains("entries"), "missing counts:\n{text}");
        assert!(text.contains("shared ×"), "missing CSE annotation:\n{text}");
    }

    #[test]
    fn figure2_query_full_evaluation() {
        // The Figure 2 query against the catalog: cd#1 embeds by deleting
        // track (3): title/piano/concerto + composer/rachmaninov all match
        // directly. cd#7 matches the track context but pays for missing
        // words/composer.
        let costs = paper_section6_costs();
        let tree = catalog(&costs);
        let hits = run(
            r#"cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]]"#,
            &costs,
            &tree,
            None,
        );
        assert_eq!(hits[0], (1, Cost::finite(3)));
        // cd#7 cannot embed the composer branch at all: it has no composer
        // (and the leaf "rachmaninov" is not deletable), so deleting the
        // inner `composer` node still leaves nowhere for the word to match.
        assert_eq!(hits.len(), 1);
    }
}
