#![forbid(unsafe_code)]
//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`]) plus the [`Rng`] convenience methods
//! (`gen_range`, `gen_bool`, `gen`). The generator is xoshiro256**
//! seeded via splitmix64 — statistically solid and stable across
//! platforms, which is what the seeded data generators and the
//! counter-pinning regression tests rely on.
//!
//! Only determinism and a reasonable distribution are promised; this is
//! NOT a cryptographic generator and does not track upstream `rand`'s
//! value streams.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic, portable).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce (subset of the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts (subset of `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform value in `[0, span)` by rejection sampling (span ≤ 2^64).
fn uniform_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        return rng.next_u64();
    }
    let span = span as u64;
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
///
/// Usable via `R: Rng + ?Sized` so generic helpers can take
/// `&mut dyn`-style borrows, matching upstream.
pub trait Rng {
    /// The raw 64-bit output stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in the given range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample(self) < p
    }

    /// A value from the `Standard` distribution (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seeded generator: xoshiro256** with splitmix64
    /// seeding. Stream differs from upstream `StdRng` (which is not
    /// reproducible across rand versions anyway); only in-repo
    /// determinism matters.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl<R: Rng + ?Sized> Rng for &mut R {
        fn next_u64(&mut self) -> u64 {
            R::next_u64(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=5u64);
            assert_eq!(w, 5);
            let x: u8 = rng.gen_range(0..=255u8);
            let _ = x;
        }
    }

    #[test]
    fn gen_range_covers_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_unsized_borrows() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let f = sample(&mut rng);
        assert!((0.0..1.0).contains(&f));
    }
}
