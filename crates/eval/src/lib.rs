#![forbid(unsafe_code)]
//! Retrieval-quality evaluation harness for approXQL.
//!
//! The repo's other test layers measure *speed* (timers), *work*
//! (counters), and *byte identity* (crash torture, golden files) — this
//! crate measures *result quality*: it loads a versioned JSON dataset of
//! queries with expected element IDs ([`dataset`]), runs each query
//! through the shared plan IR on the direct and/or schema-driven
//! evaluator, and scores the returned rankings with standard IR metrics
//! ([`metrics`]): recall@k, precision@k, MRR, and nDCG, plus latency
//! percentiles per evaluator.
//!
//! Ground truth comes from the *reference* configuration — the direct
//! evaluator with no truncation (`n = None`), whose result list is the
//! complete cost-ranked answer set of Section 6. [`gen_truth`] runs it
//! and fills the dataset's `expected` arrays; `approxql eval` then pins
//! quality against that truth in CI the same way counter regressions are
//! pinned today.
//!
//! The harness is deliberately thread-count–invariant: both evaluators
//! are deterministic at any `--threads` (see `tests/parallel_determinism.rs`),
//! so a report generated with timing output disabled is byte-identical at
//! `--threads 1` and `--threads 4`.

pub mod dataset;
pub mod metrics;

/// The dependency-free JSON reader/writer now lives in `approxql-query`
/// (it parses the JSON query-IR surface too); re-exported here so dataset
/// tooling keeps a single import path.
pub use approxql_query::json;

use approxql_core::schema_eval::SchemaEvalConfig;
use approxql_core::{Database, DatabaseError, EvalOptions, QueryInput};
use approxql_cost::parse_cost_file;
use approxql_metrics::Metric;
use dataset::{Dataset, DatasetError, DatasetQuery, EvaluatorSel, KSpec, TruthEntry};
use metrics::QueryScores;
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Harness failure: either the dataset is invalid (a usage error) or an
/// evaluator run failed (a runtime error).
#[derive(Debug)]
pub enum EvalError {
    Dataset(DatasetError),
    Db(DatabaseError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Dataset(e) => write!(f, "{e}"),
            EvalError::Db(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<DatasetError> for EvalError {
    fn from(e: DatasetError) -> EvalError {
        EvalError::Dataset(e)
    }
}

impl From<DatabaseError> for EvalError {
    fn from(e: DatabaseError) -> EvalError {
        EvalError::Db(e)
    }
}

/// Harness options shared by `run` and `gen_truth`.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Overrides every query's k (CLI `-k`).
    pub k_override: Option<KSpec>,
    /// Worker threads for both evaluators.
    pub threads: usize,
    /// Include latency numbers in the rendered reports. Disabled for
    /// golden/determinism tests, which need byte-identical output.
    pub timing: bool,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            k_override: None,
            threads: 1,
            timing: true,
        }
    }
}

/// Which evaluator produced a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    Direct,
    Schema,
}

impl Engine {
    pub fn name(self) -> &'static str {
        match self {
            Engine::Direct => "direct",
            Engine::Schema => "schema",
        }
    }
}

/// One scored (query, evaluator) execution.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    pub query_id: String,
    pub engine: Engine,
    pub k: KSpec,
    pub retrieved: usize,
    pub truth_len: usize,
    pub scores: QueryScores,
    pub latency_nanos: u64,
}

/// Aggregate scores for one evaluator across the dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub engine: Engine,
    pub queries: usize,
    pub avg_recall: f64,
    pub avg_precision: f64,
    pub mean_rr: f64,
    pub mean_ndcg: f64,
    pub p50_nanos: u64,
    pub p95_nanos: u64,
}

/// The full result of one harness invocation.
#[derive(Debug, Clone)]
pub struct EvalReport {
    pub dataset_name: String,
    pub timing: bool,
    pub runs: Vec<RunOutcome>,
    /// One summary per engine that ran, direct first.
    pub summaries: Vec<Summary>,
}

/// Resolves a `k` into the per-evaluator truncation argument: the direct
/// evaluator takes `Option<usize>` (`None` = unlimited), the schema
/// evaluator takes a node-count bound (`tree.len()` covers every
/// possible result, so it is the schema-side spelling of n = ∞).
fn k_to_n(k: KSpec, db: &Database) -> (Option<usize>, usize) {
    match k {
        KSpec::Unlimited => (None, db.tree().len()),
        KSpec::At(n) => (Some(n), n),
    }
}

/// Builds the per-cost-table databases a dataset needs. Queries without
/// a cost table evaluate against `base` unchanged; each distinct inline
/// cost file gets one derived database sharing `base`'s tree.
fn cost_variants(base: &Database, ds: &Dataset) -> Result<HashMap<String, Database>, EvalError> {
    let mut variants = HashMap::new();
    for q in &ds.queries {
        if let Some(text) = ds.resolve_costs(q) {
            if !variants.contains_key(text) {
                let costs = parse_cost_file(text).map_err(|e| {
                    EvalError::Dataset(DatasetError {
                        message: format!("query \"{}\": bad cost table: {e}", q.id),
                    })
                })?;
                variants.insert(
                    text.to_owned(),
                    Database::from_tree(base.tree().clone(), costs),
                );
            }
        }
    }
    Ok(variants)
}

fn db_for<'a>(
    base: &'a Database,
    variants: &'a HashMap<String, Database>,
    ds: &Dataset,
    q: &DatasetQuery,
) -> &'a Database {
    match ds.resolve_costs(q) {
        Some(text) => &variants[text],
        None => base,
    }
}

/// Runs one query on one engine, returning the retrieved IDs in rank
/// order and the wall-clock latency.
fn execute(
    db: &Database,
    query: QueryInput<'_>,
    engine: Engine,
    k: KSpec,
    threads: usize,
) -> Result<(Vec<u32>, u64), EvalError> {
    let opts = EvalOptions {
        threads,
        ..EvalOptions::default()
    };
    let (direct_n, schema_n) = k_to_n(k, db);
    let start = Instant::now();
    let hits = match engine {
        Engine::Direct => db.query_direct_with(query, direct_n, opts)?.0,
        Engine::Schema => {
            db.query_schema_with(query, schema_n, opts, SchemaEvalConfig::default())?
                .0
        }
    };
    let nanos = start.elapsed().as_nanos() as u64;
    Ok((hits.iter().map(|h| h.root.0).collect(), nanos))
}

/// Runs a dataset against a database and scores every query.
///
/// Every query must carry ground truth (`expected`); datasets without it
/// must be `gen_truth`'d first. Increments the `eval.*` harness counters.
pub fn run(db: &Database, ds: &Dataset, opts: RunOptions) -> Result<EvalReport, EvalError> {
    Metric::EvalHarnessRuns.incr();
    let variants = cost_variants(db, ds)?;
    let mut runs = Vec::new();
    for q in &ds.queries {
        let truth = q.expected.as_deref().ok_or_else(|| {
            EvalError::Dataset(DatasetError {
                message: format!(
                    "query \"{}\" has no \"expected\" ground truth; run --gen-truth first",
                    q.id
                ),
            })
        })?;
        let resolved = ds.resolve(q, opts.k_override);
        let engines: &[Engine] = match resolved.evaluator {
            EvaluatorSel::Direct => &[Engine::Direct],
            EvaluatorSel::Schema => &[Engine::Schema],
            EvaluatorSel::Both => &[Engine::Direct, Engine::Schema],
        };
        let qdb = db_for(db, &variants, ds, q);
        for &engine in engines {
            Metric::EvalHarnessQueries.incr();
            let input = QueryInput {
                text: &q.query,
                surface: resolved.surface,
            };
            let (retrieved, nanos) = execute(qdb, input, engine, resolved.k, opts.threads)?;
            let k_bound = match resolved.k {
                KSpec::Unlimited => usize::MAX,
                KSpec::At(n) => n,
            };
            let scores = metrics::score(&retrieved, truth, k_bound);
            let hits = (scores.recall * truth.len() as f64).round() as u64;
            Metric::EvalHarnessTruthHits.add(hits);
            runs.push(RunOutcome {
                query_id: q.id.clone(),
                engine,
                k: resolved.k,
                retrieved: retrieved.len(),
                truth_len: truth.len(),
                scores,
                latency_nanos: nanos,
            });
        }
    }
    let summaries = [Engine::Direct, Engine::Schema]
        .into_iter()
        .filter_map(|engine| summarize(&runs, engine))
        .collect();
    Ok(EvalReport {
        dataset_name: ds.name.clone(),
        timing: opts.timing,
        runs,
        summaries,
    })
}

fn summarize(runs: &[RunOutcome], engine: Engine) -> Option<Summary> {
    let of_engine: Vec<&RunOutcome> = runs.iter().filter(|r| r.engine == engine).collect();
    if of_engine.is_empty() {
        return None;
    }
    let n = of_engine.len() as f64;
    let mut latencies: Vec<u64> = of_engine.iter().map(|r| r.latency_nanos).collect();
    latencies.sort_unstable();
    Some(Summary {
        engine,
        queries: of_engine.len(),
        avg_recall: of_engine.iter().map(|r| r.scores.recall).sum::<f64>() / n,
        avg_precision: of_engine.iter().map(|r| r.scores.precision).sum::<f64>() / n,
        mean_rr: of_engine.iter().map(|r| r.scores.rr).sum::<f64>() / n,
        mean_ndcg: of_engine.iter().map(|r| r.scores.ndcg).sum::<f64>() / n,
        p50_nanos: metrics::percentile(&latencies, 50.0),
        p95_nanos: metrics::percentile(&latencies, 95.0),
    })
}

/// Fills (or refreshes) every query's `expected` ground truth from the
/// reference configuration: the direct evaluator, untruncated. The
/// result list is already in (cost, id) order, which is exactly the
/// dataset's required truth order.
pub fn gen_truth(db: &Database, ds: &mut Dataset, opts: RunOptions) -> Result<(), EvalError> {
    Metric::EvalHarnessRuns.incr();
    let variants = cost_variants(db, ds)?;
    let queries = std::mem::take(&mut ds.queries);
    let mut filled = Vec::with_capacity(queries.len());
    for mut q in queries {
        Metric::EvalHarnessQueries.incr();
        let qdb = db_for(db, &variants, ds, &q);
        let eval_opts = EvalOptions {
            threads: opts.threads,
            ..EvalOptions::default()
        };
        let input = QueryInput {
            text: &q.query,
            surface: ds.resolve(&q, None).surface,
        };
        let (hits, _) = qdb.query_direct_with(input, None, eval_opts)?;
        let truth: Vec<TruthEntry> = hits
            .iter()
            .map(|h| TruthEntry {
                id: h.root.0,
                cost: h.cost,
            })
            .collect();
        Metric::EvalTruthRows.add(truth.len() as u64);
        q.expected = Some(truth);
        filled.push(q);
    }
    ds.queries = filled;
    Ok(())
}

fn fmt_k(k: KSpec) -> String {
    match k {
        KSpec::Unlimited => "inf".to_owned(),
        KSpec::At(n) => n.to_string(),
    }
}

fn fmt_ms(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1_000_000.0)
}

impl EvalReport {
    /// Human-readable table. With `timing` disabled (the golden-test
    /// mode) the latency column and summary latency lines are omitted,
    /// making the output thread-count and machine independent.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("dataset: {}\n\n", self.dataset_name));
        let mut header = format!(
            "{:<12} {:<7} {:>5} {:>6} {:>6} {:>8} {:>10} {:>7} {:>7}",
            "query", "engine", "k", "hits", "truth", "recall", "precision", "mrr", "ndcg"
        );
        if self.timing {
            header.push_str(&format!(" {:>9}", "ms"));
        }
        out.push_str(header.trim_end());
        out.push('\n');
        out.push_str(&"-".repeat(header.trim_end().len()));
        out.push('\n');
        for r in &self.runs {
            let hits = (r.scores.recall * r.truth_len as f64).round() as u64;
            let mut line = format!(
                "{:<12} {:<7} {:>5} {:>6} {:>6} {:>8.4} {:>10.4} {:>7.4} {:>7.4}",
                r.query_id,
                r.engine.name(),
                fmt_k(r.k),
                hits,
                r.truth_len,
                r.scores.recall,
                r.scores.precision,
                r.scores.rr,
                r.scores.ndcg,
            );
            if self.timing {
                line.push_str(&format!(" {:>9}", fmt_ms(r.latency_nanos)));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        for s in &self.summaries {
            out.push('\n');
            out.push_str(&format!(
                "{} ({} runs): recall {:.4}  precision {:.4}  mrr {:.4}  ndcg {:.4}",
                s.engine.name(),
                s.queries,
                s.avg_recall,
                s.avg_precision,
                s.mean_rr,
                s.mean_ndcg,
            ));
            if self.timing {
                out.push_str(&format!(
                    "  p50 {}ms  p95 {}ms",
                    fmt_ms(s.p50_nanos),
                    fmt_ms(s.p95_nanos)
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Machine-readable JSON. Scores are fixed at four decimal places so
    /// CI can pin exact textual values.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"dataset\":");
        json::write_str(&mut out, &self.dataset_name);
        out.push_str(",\"runs\":[");
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"query\":");
            json::write_str(&mut out, &r.query_id);
            out.push_str(&format!(
                ",\"engine\":\"{}\",\"k\":{},\"retrieved\":{},\"truth\":{}",
                r.engine.name(),
                match r.k {
                    KSpec::Unlimited => "\"unlimited\"".to_owned(),
                    KSpec::At(n) => n.to_string(),
                },
                r.retrieved,
                r.truth_len,
            ));
            out.push_str(&format!(
                ",\"recall_at_k\":{:.4},\"precision_at_k\":{:.4},\"rr\":{:.4},\"ndcg\":{:.4}",
                r.scores.recall, r.scores.precision, r.scores.rr, r.scores.ndcg
            ));
            if self.timing {
                out.push_str(&format!(",\"latency_ms\":{}", fmt_ms(r.latency_nanos)));
            }
            out.push('}');
        }
        out.push_str("],\"summary\":{");
        for (i, s) in self.summaries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"queries\":{},\"avg_recall_at_k\":{:.4},\"avg_precision_at_k\":{:.4},\"mean_rr\":{:.4},\"mean_ndcg\":{:.4}",
                s.engine.name(), s.queries, s.avg_recall, s.avg_precision, s.mean_rr, s.mean_ndcg
            ));
            if self.timing {
                out.push_str(&format!(
                    ",\"latency_ms_p50\":{},\"latency_ms_p95\":{}",
                    fmt_ms(s.p50_nanos),
                    fmt_ms(s.p95_nanos)
                ));
            }
            out.push('}');
        }
        out.push_str("}}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_cost::CostModel;

    /// The paper's Figure 1 catalog, small enough to hand-verify.
    const CATALOG: &str = "\
<catalog>\
<cd><title>piano concerto</title><composer>Mozart</composer></cd>\
<mc><title>violin sonata</title></mc>\
</catalog>";

    fn build_db() -> Database {
        Database::from_xml_str(CATALOG, CostModel::new()).unwrap()
    }

    fn dataset(text: &str) -> Dataset {
        Dataset::parse(text).unwrap()
    }

    #[test]
    fn gen_truth_then_run_scores_perfect_direct() {
        let db = build_db();
        let mut ds = dataset(
            r#"{"version":1,"name":"t","defaults":{"k":5,"evaluator":"direct"},
                "queries":[{"id":"q1","query":"cd[title[\"piano\"]]"}]}"#,
        );
        gen_truth(&db, &mut ds, RunOptions::default()).unwrap();
        let truth = ds.queries[0].expected.as_ref().unwrap();
        assert!(!truth.is_empty(), "catalog query must have matches");
        let report = run(&db, &ds, RunOptions::default()).unwrap();
        assert_eq!(report.runs.len(), 1);
        let s = &report.runs[0].scores;
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.ndcg, 1.0);
    }

    #[test]
    fn schema_unlimited_has_full_recall() {
        let db = build_db();
        let mut ds = dataset(
            r#"{"version":1,"name":"t","defaults":{"k":"unlimited","evaluator":"schema"},
                "queries":[{"id":"q1","query":"cd[title]"}]}"#,
        );
        gen_truth(&db, &mut ds, RunOptions::default()).unwrap();
        let report = run(&db, &ds, RunOptions::default()).unwrap();
        assert_eq!(
            report.runs[0].scores.recall, 1.0,
            "schema @ k=inf misses results"
        );
    }

    #[test]
    fn missing_truth_is_a_dataset_error() {
        let db = build_db();
        let ds = dataset(r#"{"version":1,"name":"t","queries":[{"id":"q1","query":"cd"}]}"#);
        match run(&db, &ds, RunOptions::default()) {
            Err(EvalError::Dataset(e)) => assert!(e.message.contains("gen-truth")),
            other => panic!("expected dataset error, got {other:?}"),
        }
    }

    #[test]
    fn bad_query_is_a_runtime_error() {
        let db = build_db();
        let ds = dataset(
            r#"{"version":1,"name":"t",
                "queries":[{"id":"q1","query":"cd[[","expected":[]}]}"#,
        );
        match run(&db, &ds, RunOptions::default()) {
            Err(EvalError::Db(_)) => {}
            other => panic!("expected db error, got {other:?}"),
        }
    }

    #[test]
    fn per_query_cost_tables_build_variant_databases() {
        let db = build_db();
        // Renaming the query's cd to mc at cost 2 makes the mc album
        // reachable from a `cd[title]` query; without the rename it is not.
        let mut ds = dataset(
            r#"{"version":1,"name":"t","defaults":{"k":"unlimited","evaluator":"direct"},
                "queries":[
                  {"id":"plain","query":"cd[title]"},
                  {"id":"renamed","query":"cd[title]",
                   "costs":"rename name cd mc 2\n"}]}"#,
        );
        gen_truth(&db, &mut ds, RunOptions::default()).unwrap();
        let plain = ds.queries[0].expected.as_ref().unwrap().len();
        let renamed = ds.queries[1].expected.as_ref().unwrap().len();
        assert!(
            renamed > plain,
            "rename table must surface extra results ({renamed} vs {plain})"
        );
    }

    #[test]
    fn report_rendering_is_stable_without_timing() {
        let db = build_db();
        let mut ds = dataset(
            r#"{"version":1,"name":"t","defaults":{"k":3},
                "queries":[{"id":"q1","query":"cd[title[\"piano\"]]"}]}"#,
        );
        gen_truth(&db, &mut ds, RunOptions::default()).unwrap();
        let opts = RunOptions {
            timing: false,
            ..RunOptions::default()
        };
        let a = run(&db, &ds, opts).unwrap();
        let b = run(&db, &ds, opts).unwrap();
        assert_eq!(a.render_table(), b.render_table());
        assert_eq!(a.render_json(), b.render_json());
        assert!(!a.render_json().contains("latency"));
        assert!(!a.render_table().contains("ms"));
    }
}
