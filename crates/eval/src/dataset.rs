//! The versioned evaluation dataset format (schema v1).
//!
//! A dataset is a JSON document pairing approXQL queries with the element
//! IDs (preorder numbers) they are expected to retrieve, following the
//! defaults/overrides shape of ELF's `elf-eval` datasets:
//!
//! ```json
//! {
//!   "version": 1,
//!   "name": "figure2",
//!   "defaults": { "k": 10, "evaluator": "both", "costs": "default insert 1\n" },
//!   "queries": [
//!     {
//!       "id": "q1",
//!       "query": "cd[title[\"piano\"]]",
//!       "k": "unlimited",
//!       "evaluator": "schema",
//!       "costs": "delete term piano 4\n",
//!       "expected": [ { "id": 1, "cost": 0 }, { "id": 7, "cost": 8 } ]
//!     }
//!   ]
//! }
//! ```
//!
//! * `k` — truncation depth: a positive integer or `"unlimited"` (the
//!   paper's n = ∞ case). Resolution order: CLI flag > per-query >
//!   dataset default > 10.
//! * `evaluator` — `"direct"`, `"schema"`, or `"both"` (default both):
//!   which evaluation algorithm(s) the harness runs.
//! * `costs` — a cost file (crates/cost textual format) inlined as one
//!   JSON string; per-query tables override the dataset default. Absent
//!   means the database's own cost model (the one it was built with).
//! * `surface` — `"classic"`, `"json"`, or `"xpath"`: the query surface
//!   the `query` strings are written in. Absent means auto-detection
//!   (classic queries, JSON-IR documents, and XPath-lite paths are
//!   mutually unambiguous). Per-query values override the default.
//! * `expected` — the ground truth: element preorder IDs with their
//!   reference costs, in nondecreasing (cost, id) order. Produced by
//!   `approxql eval --gen-truth` from the untruncated direct evaluator;
//!   may be absent until then (such datasets can only be gen-truth'd,
//!   not scored).

use crate::json::{self, Json};
use approxql_cost::Cost;
use approxql_query::Surface;
use std::fmt;

/// Dataset schema version this module reads and writes.
pub const DATASET_VERSION: u64 = 1;

/// A malformed or semantically invalid dataset (a *usage* error: the
/// input file is wrong, not the system under test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetError {
    /// Human-readable description, with JSON position where available.
    pub message: String,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid dataset: {}", self.message)
    }
}

impl std::error::Error for DatasetError {}

fn invalid(message: impl Into<String>) -> DatasetError {
    DatasetError {
        message: message.into(),
    }
}

/// Which evaluation algorithm(s) a query runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvaluatorSel {
    Direct,
    Schema,
    Both,
}

impl EvaluatorSel {
    fn parse(s: &str) -> Result<EvaluatorSel, DatasetError> {
        match s {
            "direct" => Ok(EvaluatorSel::Direct),
            "schema" => Ok(EvaluatorSel::Schema),
            "both" => Ok(EvaluatorSel::Both),
            other => Err(invalid(format!(
                "evaluator must be \"direct\", \"schema\", or \"both\", found \"{other}\""
            ))),
        }
    }

    fn render(self) -> &'static str {
        match self {
            EvaluatorSel::Direct => "direct",
            EvaluatorSel::Schema => "schema",
            EvaluatorSel::Both => "both",
        }
    }
}

/// A truncation depth: the best-`n` bound, or unlimited (n = ∞).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KSpec {
    Unlimited,
    At(usize),
}

impl KSpec {
    fn parse(v: &Json) -> Result<KSpec, DatasetError> {
        match v {
            Json::Str(s) if s == "unlimited" => Ok(KSpec::Unlimited),
            Json::Num(_) => match v.as_uint() {
                Some(0) | None => Err(invalid("k must be a positive integer or \"unlimited\"")),
                Some(n) => Ok(KSpec::At(n as usize)),
            },
            other => Err(invalid(format!(
                "k must be a positive integer or \"unlimited\", found {}",
                other.kind()
            ))),
        }
    }

    fn write(self, out: &mut String) {
        match self {
            KSpec::Unlimited => out.push_str("\"unlimited\""),
            KSpec::At(n) => out.push_str(&n.to_string()),
        }
    }
}

/// Settings that exist at dataset level (defaults) and per query
/// (overrides).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Settings {
    pub k: Option<KSpec>,
    pub evaluator: Option<EvaluatorSel>,
    /// Inline cost-file text (crates/cost format).
    pub costs: Option<String>,
    /// Query surface of the `query` strings (`None` = auto-detect).
    pub surface: Option<Surface>,
}

impl Settings {
    fn parse(obj: &Json, where_: &str) -> Result<Settings, DatasetError> {
        let mut s = Settings::default();
        if let Some(k) = obj.get("k") {
            s.k = Some(KSpec::parse(k).map_err(|e| invalid(format!("{where_}: {}", e.message)))?);
        }
        if let Some(ev) = obj.get("evaluator") {
            let text = ev
                .as_str()
                .ok_or_else(|| invalid(format!("{where_}: evaluator must be a string")))?;
            s.evaluator = Some(
                EvaluatorSel::parse(text)
                    .map_err(|e| invalid(format!("{where_}: {}", e.message)))?,
            );
        }
        if let Some(c) = obj.get("costs") {
            let text = c
                .as_str()
                .ok_or_else(|| invalid(format!("{where_}: costs must be a string")))?;
            s.costs = Some(text.to_owned());
        }
        if let Some(sf) = obj.get("surface") {
            let text = sf
                .as_str()
                .ok_or_else(|| invalid(format!("{where_}: surface must be a string")))?;
            s.surface = Some(Surface::from_name(text).ok_or_else(|| {
                invalid(format!(
                    "{where_}: surface must be \"classic\", \"json\", or \"xpath\", found \"{text}\""
                ))
            })?);
        }
        Ok(s)
    }

    fn write_fields(&self, out: &mut String) {
        if let Some(k) = self.k {
            out.push_str(",\"k\":");
            k.write(out);
        }
        if let Some(ev) = self.evaluator {
            out.push_str(",\"evaluator\":");
            json::write_str(out, ev.render());
        }
        if let Some(costs) = &self.costs {
            out.push_str(",\"costs\":");
            json::write_str(out, costs);
        }
        if let Some(surface) = self.surface {
            out.push_str(",\"surface\":");
            json::write_str(out, surface.name());
        }
    }
}

/// One ground-truth row: an expected element and its reference cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruthEntry {
    /// Element preorder number.
    pub id: u32,
    /// Transformation cost charged by the reference (direct, untruncated)
    /// evaluator. Always finite.
    pub cost: Cost,
}

/// One query of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetQuery {
    /// Identifier (unique within the dataset).
    pub id: String,
    /// The approXQL query string.
    pub query: String,
    /// Per-query overrides of the dataset defaults.
    pub overrides: Settings,
    /// Ground truth, in nondecreasing (cost, id) order. `None` until
    /// `--gen-truth` fills it in.
    pub expected: Option<Vec<TruthEntry>>,
}

/// A parsed, validated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    pub name: String,
    pub defaults: Settings,
    pub queries: Vec<DatasetQuery>,
}

/// The settings in effect for one query after resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolved {
    pub k: KSpec,
    pub evaluator: EvaluatorSel,
    /// `None` keeps surface auto-detection.
    pub surface: Option<Surface>,
}

impl Dataset {
    /// Parses and validates dataset JSON.
    pub fn parse(text: &str) -> Result<Dataset, DatasetError> {
        let root = json::parse(text).map_err(|e| invalid(e.to_string()))?;
        if root.as_obj().is_none() {
            return Err(invalid(format!(
                "top level must be an object, found {}",
                root.kind()
            )));
        }
        let version = root
            .get("version")
            .ok_or_else(|| invalid("missing \"version\""))?
            .as_uint()
            .ok_or_else(|| invalid("\"version\" must be an integer"))?;
        if version != DATASET_VERSION {
            return Err(invalid(format!(
                "unsupported dataset version {version} (this build reads v{DATASET_VERSION})"
            )));
        }
        let name = root
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("missing string \"name\""))?
            .to_owned();
        let defaults = match root.get("defaults") {
            None => Settings::default(),
            Some(d) if d.as_obj().is_some() => Settings::parse(d, "defaults")?,
            Some(d) => {
                return Err(invalid(format!(
                    "\"defaults\" must be an object, found {}",
                    d.kind()
                )))
            }
        };
        let queries_json = root
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("missing array \"queries\""))?;
        if queries_json.is_empty() {
            return Err(invalid("\"queries\" must not be empty"));
        }
        let mut queries = Vec::with_capacity(queries_json.len());
        for (i, q) in queries_json.iter().enumerate() {
            queries.push(Self::parse_query(q, i)?);
        }
        let mut ids: Vec<&str> = queries.iter().map(|q| q.id.as_str()).collect();
        ids.sort_unstable();
        if ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(invalid("query ids must be unique"));
        }
        Ok(Dataset {
            name,
            defaults,
            queries,
        })
    }

    fn parse_query(q: &Json, index: usize) -> Result<DatasetQuery, DatasetError> {
        let where_ = format!("queries[{index}]");
        if q.as_obj().is_none() {
            return Err(invalid(format!("{where_} must be an object")));
        }
        let id = q
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid(format!("{where_}: missing string \"id\"")))?
            .to_owned();
        let query = q
            .get("query")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid(format!("{where_}: missing string \"query\"")))?
            .to_owned();
        let overrides = Settings::parse(q, &where_)?;
        let expected = match q.get("expected") {
            None => None,
            Some(arr) => {
                let items = arr
                    .as_arr()
                    .ok_or_else(|| invalid(format!("{where_}: \"expected\" must be an array")))?;
                let mut truth = Vec::with_capacity(items.len());
                for (j, item) in items.iter().enumerate() {
                    let id = item
                        .get("id")
                        .and_then(Json::as_uint)
                        .filter(|&v| v <= u64::from(u32::MAX))
                        .ok_or_else(|| {
                            invalid(format!("{where_}: expected[{j}] needs an integer \"id\""))
                        })?;
                    let cost = item
                        .get("cost")
                        .and_then(Json::as_uint)
                        .filter(|&v| v < u64::MAX)
                        .ok_or_else(|| {
                            invalid(format!(
                                "{where_}: expected[{j}] needs a finite integer \"cost\""
                            ))
                        })?;
                    truth.push(TruthEntry {
                        id: id as u32,
                        cost: Cost::finite(cost),
                    });
                }
                let sorted = truth
                    .windows(2)
                    .all(|w| (w[0].cost, w[0].id) <= (w[1].cost, w[1].id));
                if !sorted {
                    return Err(invalid(format!(
                        "{where_}: \"expected\" must be sorted by (cost, id)"
                    )));
                }
                let mut ids: Vec<u32> = truth.iter().map(|t| t.id).collect();
                ids.sort_unstable();
                if ids.windows(2).any(|w| w[0] == w[1]) {
                    return Err(invalid(format!(
                        "{where_}: \"expected\" ids must be unique"
                    )));
                }
                Some(truth)
            }
        };
        Ok(DatasetQuery {
            id,
            query,
            overrides,
            expected,
        })
    }

    /// The effective (k, evaluator) for one query: CLI override >
    /// per-query > dataset default > (10, both).
    pub fn resolve(&self, query: &DatasetQuery, k_override: Option<KSpec>) -> Resolved {
        Resolved {
            k: k_override
                .or(query.overrides.k)
                .or(self.defaults.k)
                .unwrap_or(KSpec::At(10)),
            evaluator: query
                .overrides
                .evaluator
                .or(self.defaults.evaluator)
                .unwrap_or(EvaluatorSel::Both),
            surface: query.overrides.surface.or(self.defaults.surface),
        }
    }

    /// The effective cost-file text for one query (`None` = empty model).
    pub fn resolve_costs<'a>(&'a self, query: &'a DatasetQuery) -> Option<&'a str> {
        query
            .overrides
            .costs
            .as_deref()
            .or(self.defaults.costs.as_deref())
    }

    /// Serializes the dataset back to JSON (stable field order, one query
    /// per line) — the `--gen-truth` output format. `Dataset::parse` of
    /// the output reproduces the dataset.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n  \"name\": ");
        json::write_str(&mut out, &self.name);
        // Reuse the override writer for defaults: it emits leading commas,
        // so wrap in a throwaway object prefix.
        let mut defaults = String::new();
        self.defaults.write_fields(&mut defaults);
        if !defaults.is_empty() {
            out.push_str(",\n  \"defaults\": {");
            out.push_str(defaults.trim_start_matches(','));
            out.push('}');
        }
        out.push_str(",\n  \"queries\": [\n");
        for (i, q) in self.queries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("    {\"id\":");
            json::write_str(&mut out, &q.id);
            out.push_str(",\"query\":");
            json::write_str(&mut out, &q.query);
            q.overrides.write_fields(&mut out);
            if let Some(truth) = &q.expected {
                out.push_str(",\"expected\":[");
                for (j, t) in truth.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"id\":{},\"cost\":{}}}",
                        t.id,
                        t.cost.value().unwrap_or(0)
                    ));
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "version": 1,
      "name": "sample",
      "defaults": {"k": 5, "evaluator": "both", "costs": "default insert 1\n"},
      "queries": [
        {"id": "q1", "query": "cd[title[\"piano\"]]",
         "expected": [{"id": 1, "cost": 0}, {"id": 7, "cost": 8}]},
        {"id": "q2", "query": "mc", "k": "unlimited", "evaluator": "direct",
         "costs": "rename name mc cd 4\n"}
      ]
    }"#;

    #[test]
    fn parses_and_resolves() {
        let ds = Dataset::parse(SAMPLE).unwrap();
        assert_eq!(ds.name, "sample");
        assert_eq!(ds.queries.len(), 2);
        let r1 = ds.resolve(&ds.queries[0], None);
        assert_eq!(r1.k, KSpec::At(5));
        assert_eq!(r1.evaluator, EvaluatorSel::Both);
        let r2 = ds.resolve(&ds.queries[1], None);
        assert_eq!(r2.k, KSpec::Unlimited);
        assert_eq!(r2.evaluator, EvaluatorSel::Direct);
        // CLI override wins over everything.
        let r2b = ds.resolve(&ds.queries[1], Some(KSpec::At(3)));
        assert_eq!(r2b.k, KSpec::At(3));
        assert_eq!(ds.resolve_costs(&ds.queries[0]), Some("default insert 1\n"));
        assert_eq!(
            ds.resolve_costs(&ds.queries[1]),
            Some("rename name mc cd 4\n")
        );
        let truth = ds.queries[0].expected.as_ref().unwrap();
        assert_eq!(truth[0].id, 1);
        assert_eq!(truth[1].cost, Cost::finite(8));
        assert!(ds.queries[1].expected.is_none());
    }

    #[test]
    fn json_round_trip() {
        let ds = Dataset::parse(SAMPLE).unwrap();
        let text = ds.to_json();
        let back = Dataset::parse(&text).unwrap();
        assert_eq!(back, ds);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn rejects_malformed_datasets() {
        let cases: &[(&str, &str)] = &[
            ("not json at all", "line 1"),
            (r#"{"version": 2, "name": "x", "queries": []}"#, "version"),
            (r#"{"name": "x", "queries": [{}]}"#, "version"),
            (r#"{"version": 1, "queries": [{}]}"#, "name"),
            (r#"{"version": 1, "name": "x"}"#, "queries"),
            (r#"{"version": 1, "name": "x", "queries": []}"#, "empty"),
            (
                r#"{"version": 1, "name": "x", "queries": [{"id": "a"}]}"#,
                "query",
            ),
            (
                r#"{"version": 1, "name": "x", "queries": [
                    {"id": "a", "query": "cd"}, {"id": "a", "query": "mc"}]}"#,
                "unique",
            ),
            (
                r#"{"version": 1, "name": "x",
                    "queries": [{"id": "a", "query": "cd", "k": 0}]}"#,
                "positive",
            ),
            (
                r#"{"version": 1, "name": "x",
                    "queries": [{"id": "a", "query": "cd", "evaluator": "fast"}]}"#,
                "evaluator",
            ),
            (
                r#"{"version": 1, "name": "x", "queries": [
                    {"id": "a", "query": "cd",
                     "expected": [{"id": 5, "cost": 1}, {"id": 1, "cost": 0}]}]}"#,
                "sorted",
            ),
            (
                r#"{"version": 1, "name": "x", "queries": [
                    {"id": "a", "query": "cd",
                     "expected": [{"id": 5, "cost": 1}, {"id": 5, "cost": 1}]}]}"#,
                "unique",
            ),
        ];
        for (text, needle) in cases {
            let err = Dataset::parse(text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "error for {text:?} should mention {needle:?}, got: {}",
                err.message
            );
        }
    }

    #[test]
    fn surface_fields_resolve_and_round_trip() {
        let ds = Dataset::parse(
            r#"{"version": 1, "name": "s",
                "defaults": {"surface": "json"},
                "queries": [
                  {"id": "a", "query": "{\"v\":1,\"query\":{\"name\":\"cd\"}}"},
                  {"id": "b", "query": "/cd//title", "surface": "xpath"}]}"#,
        )
        .unwrap();
        assert_eq!(
            ds.resolve(&ds.queries[0], None).surface,
            Some(Surface::Json)
        );
        assert_eq!(
            ds.resolve(&ds.queries[1], None).surface,
            Some(Surface::Xpath)
        );
        let back = Dataset::parse(&ds.to_json()).unwrap();
        assert_eq!(back, ds);

        // Absent everywhere → auto-detect (None).
        let plain = Dataset::parse(
            r#"{"version": 1, "name": "p",
                "queries": [{"id": "a", "query": "cd"}]}"#,
        )
        .unwrap();
        assert_eq!(plain.resolve(&plain.queries[0], None).surface, None);

        // Unknown surface names are rejected.
        let err = Dataset::parse(
            r#"{"version": 1, "name": "x",
                "queries": [{"id": "a", "query": "cd", "surface": "sql"}]}"#,
        )
        .unwrap_err();
        assert!(err.message.contains("surface"), "{}", err.message);
    }

    #[test]
    fn defaults_are_optional() {
        let ds = Dataset::parse(
            r#"{"version": 1, "name": "min",
                "queries": [{"id": "a", "query": "cd"}]}"#,
        )
        .unwrap();
        let r = ds.resolve(&ds.queries[0], None);
        assert_eq!(r.k, KSpec::At(10));
        assert_eq!(r.evaluator, EvaluatorSel::Both);
        assert_eq!(ds.resolve_costs(&ds.queries[0]), None);
    }
}
