//! Ranking-metric math: recall@k, precision@k, MRR, nDCG, and latency
//! percentiles.
//!
//! All functions take the *retrieved* ranking (element IDs in result
//! order, already truncated to k by the evaluator) and the *truth* list
//! (IDs with reference costs, best first). Definitions, pinned by the
//! fixture tests below so the harness is not its own oracle:
//!
//! * **recall@k** — |retrieved ∩ truth| / |truth|; `1.0` when the truth
//!   is empty (there was nothing to miss).
//! * **precision@k** — |retrieved ∩ truth| / |retrieved|; when nothing
//!   was retrieved, `1.0` if the truth is empty (vacuously clean) and
//!   `0.0` otherwise.
//! * **MRR** — 1/rank of the first relevant result (rank 1 = first);
//!   `0.0` when no retrieved result is relevant.
//! * **nDCG** — graded relevance derived from the reference costs:
//!   sort the *distinct* truth costs ascending; an element whose cost is
//!   the i-th distinct value (0-based) has grade `num_distinct − i`, so
//!   the cheapest matches grade highest and *equal costs get equal
//!   grades* — any ordering of a cost tie scores the same. Linear gain:
//!   DCG = Σ grade(result_i) / log2(i + 2); nDCG = DCG / IDCG where
//!   IDCG ranks the top-|retrieved-capacity| grades ideally. `1.0` when
//!   the truth is empty.
//!
//! Latency percentiles use the nearest-rank method (ceil(p/100·n)-th
//! smallest), matching the convention of EXPERIMENTS.md.

use crate::dataset::TruthEntry;
use approxql_cost::Cost;
use std::collections::HashMap;

/// Per-query metric scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryScores {
    pub recall: f64,
    pub precision: f64,
    pub rr: f64,
    pub ndcg: f64,
}

/// Scores one retrieved ranking against the truth. `k` is the truncation
/// depth that was in effect (bounds the ideal ranking for nDCG); the
/// retrieved list is assumed already truncated to at most `k`.
pub fn score(retrieved: &[u32], truth: &[TruthEntry], k: usize) -> QueryScores {
    let grades = grade_table(truth);
    let hits = retrieved
        .iter()
        .filter(|id| grades.contains_key(id))
        .count();
    let recall = if truth.is_empty() {
        1.0
    } else {
        hits as f64 / truth.len() as f64
    };
    let precision = if retrieved.is_empty() {
        if truth.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        hits as f64 / retrieved.len() as f64
    };
    let rr = retrieved
        .iter()
        .position(|id| grades.contains_key(id))
        .map_or(0.0, |rank0| 1.0 / (rank0 as f64 + 1.0));
    QueryScores {
        recall,
        precision,
        rr,
        ndcg: ndcg(retrieved, truth, &grades, k),
    }
}

/// Maps each truth ID to its grade: distinct costs ascending, grade =
/// number of distinct costs − index, so the best (lowest) cost gets the
/// highest grade and ties share one.
fn grade_table(truth: &[TruthEntry]) -> HashMap<u32, u64> {
    let mut costs: Vec<Cost> = truth.iter().map(|t| t.cost).collect();
    costs.sort_unstable();
    costs.dedup();
    let n = costs.len() as u64;
    truth
        .iter()
        .map(|t| {
            let idx = costs.binary_search(&t.cost).expect("cost is present") as u64;
            (t.id, n - idx)
        })
        .collect()
}

fn dcg(grades_in_rank_order: impl Iterator<Item = u64>) -> f64 {
    grades_in_rank_order
        .enumerate()
        .map(|(i, g)| g as f64 / (i as f64 + 2.0).log2())
        .sum()
}

fn ndcg(retrieved: &[u32], truth: &[TruthEntry], grades: &HashMap<u32, u64>, k: usize) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let actual = dcg(retrieved
        .iter()
        .map(|id| grades.get(id).copied().unwrap_or(0)));
    // Ideal ranking: the truth's own grades (already best-first since the
    // truth is (cost, id)-sorted and grades are monotone in cost), capped
    // at the truncation depth.
    let ideal = dcg(truth.iter().take(k).map(|t| grades[&t.id]));
    if ideal == 0.0 {
        1.0
    } else {
        actual / ideal
    }
}

/// Nearest-rank percentile of a latency sample, in nanoseconds.
/// `p` is in [0, 100]; returns 0 for an empty sample.
pub fn percentile(sorted_nanos: &[u64], p: f64) -> u64 {
    if sorted_nanos.is_empty() {
        return 0;
    }
    debug_assert!(sorted_nanos.windows(2).all(|w| w[0] <= w[1]));
    let n = sorted_nanos.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted_nanos[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u32, cost: u64) -> TruthEntry {
        TruthEntry {
            id,
            cost: Cost::finite(cost),
        }
    }

    const EPS: f64 = 1e-12;

    fn assert_close(actual: f64, expected: f64, what: &str) {
        assert!(
            (actual - expected).abs() < EPS,
            "{what}: expected {expected}, got {actual}"
        );
    }

    #[test]
    fn perfect_ranking_scores_one_everywhere() {
        let truth = [t(1, 0), t(2, 3), t(3, 5)];
        let s = score(&[1, 2, 3], &truth, 10);
        assert_close(s.recall, 1.0, "recall");
        assert_close(s.precision, 1.0, "precision");
        assert_close(s.rr, 1.0, "rr");
        assert_close(s.ndcg, 1.0, "ndcg");
    }

    #[test]
    fn recall_when_fewer_than_k_results_exist() {
        // k = 10 but only 2 of 4 truth elements retrieved: recall counts
        // against the truth size, not k.
        let truth = [t(1, 0), t(2, 1), t(3, 2), t(4, 3)];
        let s = score(&[1, 2], &truth, 10);
        assert_close(s.recall, 0.5, "recall");
        // Precision counts against what was actually retrieved (2), so a
        // short-but-clean result list is not punished.
        assert_close(s.precision, 1.0, "precision");
    }

    #[test]
    fn mrr_with_missing_hits() {
        let truth = [t(7, 0)];
        // First relevant result at rank 3 → RR = 1/3.
        let s = score(&[1, 2, 7], &truth, 10);
        assert_close(s.rr, 1.0 / 3.0, "rr at rank 3");
        // No relevant result at all → RR = 0, by convention.
        let s = score(&[1, 2, 3], &truth, 10);
        assert_close(s.rr, 0.0, "rr with no hit");
        // Nothing retrieved → RR = 0 and precision = 0 (truth non-empty).
        let s = score(&[], &truth, 10);
        assert_close(s.rr, 0.0, "rr on empty");
        assert_close(s.precision, 0.0, "precision on empty");
        assert_close(s.recall, 0.0, "recall on empty");
    }

    #[test]
    fn empty_truth_is_vacuously_perfect() {
        let s = score(&[], &[], 10);
        assert_close(s.recall, 1.0, "recall");
        assert_close(s.precision, 1.0, "precision");
        assert_close(s.ndcg, 1.0, "ndcg");
        assert_close(s.rr, 0.0, "rr");
        // Retrieving junk against empty truth: recall stays 1, precision 0.
        let s = score(&[9], &[], 10);
        assert_close(s.recall, 1.0, "recall with junk");
        assert_close(s.precision, 0.0, "precision with junk");
    }

    #[test]
    fn ndcg_hand_computed() {
        // Truth: id 1 @ cost 0 (grade 2), ids 2,3 @ cost 4 (grade 1).
        // Retrieved ranking [2, 1]:
        //   DCG  = 1/log2(2) + 2/log2(3) = 1 + 2/log2(3)
        // Ideal (truth order, k=10): [2, 1, 1] grades →
        //   IDCG = 2/log2(2) + 1/log2(3) + 1/log2(4) = 2 + 1/log2(3) + 0.5
        let truth = [t(1, 0), t(2, 4), t(3, 4)];
        let s = score(&[2, 1], &truth, 10);
        let dcg = 1.0 + 2.0 / 3f64.log2();
        let idcg = 2.0 + 1.0 / 3f64.log2() + 0.5;
        assert_close(s.ndcg, dcg / idcg, "ndcg");
    }

    #[test]
    fn ndcg_is_tie_order_invariant() {
        // ids 2 and 3 share cost 4 → same grade, so swapping them in the
        // ranking must not change nDCG.
        let truth = [t(1, 0), t(2, 4), t(3, 4)];
        let a = score(&[1, 2, 3], &truth, 10);
        let b = score(&[1, 3, 2], &truth, 10);
        assert_close(a.ndcg, b.ndcg, "tie swap");
        assert_close(a.ndcg, 1.0, "both ideal");
        // ...but swapping across different costs does change it.
        let c = score(&[2, 1, 3], &truth, 10);
        assert!(c.ndcg < a.ndcg, "cross-cost swap must lower nDCG");
    }

    #[test]
    fn ndcg_caps_ideal_at_k() {
        // k = 1: the ideal ranking is just the single best grade, so
        // retrieving the best element alone is a perfect 1.0.
        let truth = [t(1, 0), t(2, 4), t(3, 4)];
        let s = score(&[1], &truth, 1);
        assert_close(s.ndcg, 1.0, "best-only at k=1");
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sample: Vec<u64> = (1..=10).map(|i| i * 100).collect();
        assert_eq!(percentile(&sample, 50.0), 500);
        assert_eq!(percentile(&sample, 95.0), 1000);
        assert_eq!(percentile(&sample, 100.0), 1000);
        assert_eq!(percentile(&sample, 0.0), 100);
        assert_eq!(percentile(&[42], 50.0), 42);
        assert_eq!(percentile(&[42], 95.0), 42);
        assert_eq!(percentile(&[], 50.0), 0);
        // Three samples: p50 is the 2nd smallest (ceil(1.5) = 2).
        assert_eq!(percentile(&[10, 20, 30], 50.0), 20);
    }
}
