#![forbid(unsafe_code)]
//! Compiled physical-plan IR shared by both evaluators.
//!
//! The expanded query representation (Section 6.1) is *interpreted* twice
//! in the paper: once against the data indexes (the direct evaluation of
//! Section 6.5) and once against the schema (the adapted `primary` of
//! Section 7.2). Both walks drive the same eight-operator algebra, so this
//! crate compiles the expanded DAG **once** into an explicit physical
//! operator DAG — [`PlanOp`] nodes over shared subplan handles — that
//! either evaluator executes through the [`PlanAlgebra`] trait.
//!
//! Compilation hash-conses every operator (common-subexpression
//! elimination): structurally identical subplans get one node, so the
//! per-renaming expansions of a label — which differ only in the ancestor
//! side of their final `Join` — share their entire renaming-independent
//! inner subtree instead of re-evaluating it per ancestor. The number of
//! avoided duplicates is recorded in [`Plan::cse_reuses`] and the
//! `plan.cse_reuses` metric.
//!
//! Execution schedules the DAG bottom-up in *topological waves*: every
//! node of a wave depends only on earlier waves, so a wave's nodes run in
//! parallel via `Scope::map` (worker metric deltas are absorbed in wave
//! order, keeping all counters byte-identical at any thread count), and
//! each node is executed exactly once however often it is referenced.

use approxql_cost::{Cost, NodeType};
use approxql_exec::Executor;
use approxql_metrics::Metric;
use approxql_query::expand::{ExpandedNode, ExpandedQuery};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Index of a [`PlanOp`] inside [`Plan::ops`]. Children always have
/// smaller handles than their parents (the DAG is built bottom-up).
pub type PlanHandle = usize;

/// One physical operator. Edge costs of `and`/`or` combinations are always
/// zero in the expanded representation, so only the operators that carry a
/// cost parameter (`Shift`, `Merge`, `OuterJoin`) store one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PlanOp {
    /// Materialize the posting list of a label from the catalog.
    Fetch {
        /// Label text (resolved against the interner at execution time).
        label: String,
        /// Struct or text posting space.
        ty: NodeType,
        /// Leaf fetches carry the zero leaf-cost channel (the leaf rule).
        is_leaf: bool,
    },
    /// Add a pending edge cost to every entry (`or` right branches).
    Shift {
        /// Input list.
        input: PlanHandle,
        /// Cost added to both channels of every entry.
        cost: Cost,
    },
    /// Merge a renamed variant into a candidate list (rename cost applied
    /// to the right side).
    Merge {
        /// The running candidate list.
        left: PlanHandle,
        /// The renamed label's list.
        right: PlanHandle,
        /// Rename cost.
        c_ren: Cost,
    },
    /// Structural join: ancestors that have a descendant in `descendants`.
    Join {
        /// Ancestor candidates.
        ancestors: PlanHandle,
        /// Descendant results.
        descendants: PlanHandle,
    },
    /// Join with an optional (deletable) descendant.
    OuterJoin {
        /// Ancestor candidates.
        ancestors: PlanHandle,
        /// Descendant results.
        descendants: PlanHandle,
        /// Cost of deleting the descendant ([`Cost::INFINITY`] forbids).
        delcost: Cost,
    },
    /// `and` combination of two subexpression results.
    Intersect {
        /// Left operand.
        left: PlanHandle,
        /// Right operand.
        right: PlanHandle,
    },
    /// `or` combination of two subexpression results.
    Union {
        /// Left operand.
        left: PlanHandle,
        /// Right operand.
        right: PlanHandle,
    },
    /// Terminal best-n selection over the root list. Its parameters
    /// (`n`/`k`, the leaf rule) are runtime inputs, not plan constants, so
    /// one compiled plan serves every request and driver round.
    SortBest {
        /// The root list.
        input: PlanHandle,
    },
}

impl PlanOp {
    /// The operator's children, in evaluation-order.
    pub fn inputs(&self) -> Vec<PlanHandle> {
        match *self {
            PlanOp::Fetch { .. } => vec![],
            PlanOp::Shift { input, .. } | PlanOp::SortBest { input } => vec![input],
            PlanOp::Merge { left, right, .. }
            | PlanOp::Intersect { left, right }
            | PlanOp::Union { left, right } => vec![left, right],
            PlanOp::Join {
                ancestors,
                descendants,
            }
            | PlanOp::OuterJoin {
                ancestors,
                descendants,
                ..
            } => vec![ancestors, descendants],
        }
    }

    /// Operator name as rendered by `--explain`.
    pub fn name(&self) -> &'static str {
        match self {
            PlanOp::Fetch { .. } => "fetch",
            PlanOp::Shift { .. } => "shift",
            PlanOp::Merge { .. } => "merge",
            PlanOp::Join { .. } => "join",
            PlanOp::OuterJoin { .. } => "outerjoin",
            PlanOp::Intersect { .. } => "intersect",
            PlanOp::Union { .. } => "union",
            PlanOp::SortBest { .. } => "sort_best",
        }
    }
}

/// Why an [`ExpandedQuery`] could not be compiled. Queries built through
/// the parser always compile; these cover hand-constructed arenas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The root of the expanded query is not a selector (`Node`/`Leaf`).
    NonSelectorRoot,
    /// A child index pointed outside the arena.
    BadNodeIndex(usize),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NonSelectorRoot => {
                write!(f, "query root must be a selector (name or text)")
            }
            PlanError::BadNodeIndex(i) => write!(f, "expanded-query child index {i} out of range"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A compiled physical plan: an operator DAG plus its wave schedule.
#[derive(Debug, Clone)]
pub struct Plan {
    ops: Vec<PlanOp>,
    result: PlanHandle,
    root_list: PlanHandle,
    waves: Vec<Vec<PlanHandle>>,
    uses: Vec<u32>,
    cse_reuses: u64,
}

impl Plan {
    /// All operators, indexed by [`PlanHandle`].
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// The terminal [`PlanOp::SortBest`] node.
    pub fn result(&self) -> PlanHandle {
        self.result
    }

    /// The root *list* (the `SortBest` input).
    pub fn root_list(&self) -> PlanHandle {
        self.root_list
    }

    /// Topological waves over the list-valued operators: every operator
    /// appears in exactly one wave, after all of its inputs. (`SortBest`
    /// is terminal and excluded — its parameters are runtime inputs.)
    pub fn waves(&self) -> &[Vec<PlanHandle>] {
        &self.waves
    }

    /// How many operators reference this node (plus one for the root).
    /// `> 1` means the subplan is CSE-shared.
    pub fn use_count(&self, h: PlanHandle) -> u32 {
        self.uses.get(h).copied().unwrap_or(0)
    }

    /// Structurally identical subplans merged away during compilation.
    pub fn cse_reuses(&self) -> u64 {
        self.cse_reuses
    }

    /// Number of shared (use-count > 1) operators.
    pub fn shared_ops(&self) -> usize {
        self.uses.iter().filter(|&&u| u > 1).count()
    }
}

struct Compiler<'a> {
    ex: &'a ExpandedQuery,
    ops: Vec<PlanOp>,
    intern: HashMap<PlanOp, PlanHandle>,
    /// `(expanded node, ancestor handle)` → result, mirroring the paper's
    /// Section 6.5 memo but keyed structurally instead of by identity.
    eval_memo: HashMap<(usize, PlanHandle), PlanHandle>,
    /// Per-`Node` renaming-merged child result (ancestor-independent).
    under_memo: HashMap<usize, PlanHandle>,
    cse: u64,
}

impl Compiler<'_> {
    fn intern(&mut self, op: PlanOp) -> PlanHandle {
        if let Some(&h) = self.intern.get(&op) {
            self.cse += 1;
            return h;
        }
        let h = self.ops.len();
        self.ops.push(op.clone());
        self.intern.insert(op, h);
        h
    }

    fn node(&self, u: usize) -> Result<&ExpandedNode, PlanError> {
        self.ex.nodes.get(u).ok_or(PlanError::BadNodeIndex(u))
    }

    /// The candidate list of a selector: its label's posting merged with
    /// every renamed label's (rename costs applied), in renaming order.
    fn fetch_merged(
        &mut self,
        label: &str,
        ty: NodeType,
        renamings: &[(String, Cost)],
        is_leaf: bool,
    ) -> PlanHandle {
        let mut h = self.intern(PlanOp::Fetch {
            label: label.to_owned(),
            ty,
            is_leaf,
        });
        for (ren, c_ren) in renamings {
            let r = self.intern(PlanOp::Fetch {
                label: ren.clone(),
                ty,
                is_leaf,
            });
            h = self.intern(PlanOp::Merge {
                left: h,
                right: r,
                c_ren: *c_ren,
            });
        }
        h
    }

    /// The renaming-merged child result of a `Node`: the child evaluated
    /// under the original label's ancestor list and under each renaming's,
    /// merged in renaming order. Ancestor-independent, hence memoized per
    /// arena node — this is the subtree the per-renaming `Join`s share.
    fn under_renamings(&mut self, u: usize) -> Result<PlanHandle, PlanError> {
        if let Some(&h) = self.under_memo.get(&u) {
            self.cse += 1;
            return Ok(h);
        }
        let ExpandedNode::Node {
            label,
            ty,
            renamings,
            child,
        } = self.node(u)?.clone()
        else {
            return Err(PlanError::BadNodeIndex(u));
        };
        let anc0 = self.intern(PlanOp::Fetch {
            label: label.clone(),
            ty,
            is_leaf: false,
        });
        let mut h = self.eval(child, anc0)?;
        for (ren, c_ren) in &renamings {
            let anc = self.intern(PlanOp::Fetch {
                label: ren.clone(),
                ty,
                is_leaf: false,
            });
            let e = self.eval(child, anc)?;
            h = self.intern(PlanOp::Merge {
                left: h,
                right: e,
                c_ren: *c_ren,
            });
        }
        self.under_memo.insert(u, h);
        Ok(h)
    }

    /// Compiles the evaluation of expanded node `u` below the ancestor
    /// candidates `anc` — the plan-level image of Figure 4's recursion.
    /// Edge costs are not applied here; `Or` parents shift afterwards, so
    /// the memo key stays independent of the incoming edge.
    fn eval(&mut self, u: usize, anc: PlanHandle) -> Result<PlanHandle, PlanError> {
        if let Some(&h) = self.eval_memo.get(&(u, anc)) {
            self.cse += 1;
            return Ok(h);
        }
        let h = match self.node(u)?.clone() {
            ExpandedNode::Leaf {
                label,
                ty,
                renamings,
                delcost,
            } => {
                let ld = self.fetch_merged(&label, ty, &renamings, true);
                self.intern(PlanOp::OuterJoin {
                    ancestors: anc,
                    descendants: ld,
                    delcost,
                })
            }
            ExpandedNode::Node { .. } => {
                let res = self.under_renamings(u)?;
                self.intern(PlanOp::Join {
                    ancestors: anc,
                    descendants: res,
                })
            }
            ExpandedNode::And { left, right } => {
                let l = self.eval(left, anc)?;
                let r = self.eval(right, anc)?;
                self.intern(PlanOp::Intersect { left: l, right: r })
            }
            ExpandedNode::Or {
                left,
                right,
                edgecost,
            } => {
                let l = self.eval(left, anc)?;
                let r = self.eval(right, anc)?;
                let s = self.intern(PlanOp::Shift {
                    input: r,
                    cost: edgecost,
                });
                self.intern(PlanOp::Union { left: l, right: s })
            }
        };
        self.eval_memo.insert((u, anc), h);
        Ok(h)
    }
}

/// Compiles an expanded query into a physical plan.
///
/// The compiled DAG mirrors Figure 4 exactly — the root selector is never
/// joined with an ancestor list — with structurally identical subplans
/// hash-consed into shared nodes. Sharing changes the *work*, never the
/// *result*: a shared node produces the identical list its duplicates
/// would have produced.
pub fn compile(expanded: &ExpandedQuery) -> Result<Plan, PlanError> {
    Metric::PlanCompile.incr();
    let mut c = Compiler {
        ex: expanded,
        ops: Vec::new(),
        intern: HashMap::new(),
        eval_memo: HashMap::new(),
        under_memo: HashMap::new(),
        cse: 0,
    };
    let root_list = match c.node(expanded.root)?.clone() {
        ExpandedNode::Leaf {
            label,
            ty,
            renamings,
            ..
        } => c.fetch_merged(&label, ty, &renamings, true),
        ExpandedNode::Node { .. } => c.under_renamings(expanded.root)?,
        _ => return Err(PlanError::NonSelectorRoot),
    };
    let result = c.intern(PlanOp::SortBest { input: root_list });
    Metric::PlanCseReuses.add(c.cse);

    // Reference counts (the root gets one implicit use).
    let mut uses = vec![0u32; c.ops.len()];
    for op in &c.ops {
        for i in op.inputs() {
            uses[i] += 1;
        }
    }
    uses[result] += 1;

    // Wave schedule: depth 0 = fetches, depth(op) = 1 + max(inputs).
    // Children always precede parents in `ops`, so one forward pass works.
    let mut depth = vec![0usize; c.ops.len()];
    let mut max_depth = 0;
    for (h, op) in c.ops.iter().enumerate() {
        let d = op.inputs().iter().map(|&i| depth[i] + 1).max().unwrap_or(0);
        depth[h] = d;
        max_depth = max_depth.max(d);
    }
    let mut waves = vec![Vec::new(); max_depth + 1];
    for h in 0..c.ops.len() {
        if h != result {
            waves[depth[h]].push(h);
        }
    }
    waves.retain(|w| !w.is_empty());

    Ok(Plan {
        ops: c.ops,
        result,
        root_list,
        waves,
        uses,
        cse_reuses: c.cse,
    })
}

/// The list algebra a plan executes against — implemented over the data
/// indexes ([`crate`-external] Section 6.4 lists) and over the schema
/// (Section 7.2 k-lists). Edge costs of `Intersect`/`Union` are always
/// zero and therefore not passed.
pub trait PlanAlgebra: Sync {
    /// The list type the algebra operates on.
    type L: Send + Sync;

    /// The empty list (used as a total fallback for malformed plans).
    fn empty(&self) -> Self::L;
    /// Materialize a label's posting list.
    fn fetch(&self, label: &str, ty: NodeType, is_leaf: bool) -> Self::L;
    /// Add `cost` to every entry.
    fn shift(&self, l: &Self::L, cost: Cost) -> Self::L;
    /// Merge a renamed variant (rename cost on the right side).
    fn merge(&self, l: &Self::L, r: &Self::L, c_ren: Cost) -> Self::L;
    /// Structural ancestor/descendant join.
    fn join(&self, anc: &Self::L, desc: &Self::L) -> Self::L;
    /// Join with optional (deletable) descendant.
    fn outerjoin(&self, anc: &Self::L, desc: &Self::L, delcost: Cost) -> Self::L;
    /// `and` combination.
    fn intersect(&self, l: &Self::L, r: &Self::L) -> Self::L;
    /// `or` combination.
    fn union(&self, l: &Self::L, r: &Self::L) -> Self::L;
    /// Entry count of a list (for per-operator statistics).
    fn len(l: &Self::L) -> usize;
}

/// Executes every list-valued operator of `plan` exactly once, in
/// topological waves, fanning each wave out over `threads` workers.
///
/// Returns one slot per operator (the `SortBest` slot stays empty); the
/// caller applies its best-n/best-k selection to the [`Plan::root_list`]
/// slot. Results and metric counters are byte-identical at any thread
/// count: waves run in handle order and each worker's metric delta is
/// absorbed in item order by `Scope::map`.
pub fn execute<A: PlanAlgebra>(plan: &Plan, alg: &A, threads: usize) -> Vec<OnceLock<A::L>> {
    let slots: Vec<OnceLock<A::L>> = (0..plan.ops.len()).map(|_| OnceLock::new()).collect();
    Executor::new(threads).scope(|scope| {
        for wave in plan.waves() {
            let outs = scope.map(wave.clone(), |h: PlanHandle| run_op(plan, alg, &slots, h));
            for (&h, out) in wave.iter().zip(outs) {
                let _ = slots[h].set(out);
            }
        }
    });
    slots
}

/// Executes one operator against already-filled input slots. Total: a
/// malformed schedule yields empty lists rather than a panic.
fn run_op<A: PlanAlgebra>(plan: &Plan, alg: &A, slots: &[OnceLock<A::L>], h: PlanHandle) -> A::L {
    let Some(op) = plan.ops().get(h) else {
        return alg.empty();
    };
    let mut vals = Vec::with_capacity(2);
    for i in op.inputs() {
        match slots.get(i).and_then(|s| s.get()) {
            Some(v) => vals.push(v),
            None => return alg.empty(),
        }
    }
    match (op, vals.as_slice()) {
        (PlanOp::Fetch { label, ty, is_leaf }, _) => alg.fetch(label, *ty, *is_leaf),
        (PlanOp::Shift { cost, .. }, [l]) => alg.shift(l, *cost),
        (PlanOp::Merge { c_ren, .. }, [l, r]) => alg.merge(l, r, *c_ren),
        (PlanOp::Join { .. }, [a, d]) => alg.join(a, d),
        (PlanOp::OuterJoin { delcost, .. }, [a, d]) => alg.outerjoin(a, d, *delcost),
        (PlanOp::Intersect { .. }, [l, r]) => alg.intersect(l, r),
        (PlanOp::Union { .. }, [l, r]) => alg.union(l, r),
        // SortBest is terminal and never scheduled; arity mismatches
        // cannot happen for compiled plans.
        _ => alg.empty(),
    }
}

/// Renders a plan as an indented operator tree for `--explain`.
///
/// Deterministic: nodes print in DFS order from the terminal `SortBest`,
/// children in evaluation order. A CSE-shared node prints its subtree on
/// first visit with a `shared ×k` annotation and a one-line `see #h`
/// back-reference afterwards. `counts` (one entry per operator, e.g.
/// output entry counts from an execution) annotates each first visit.
pub fn render(plan: &Plan, counts: Option<&[u64]>) -> String {
    let mut out = String::new();
    let mut seen = vec![false; plan.ops().len()];
    render_node(plan, plan.result(), 0, counts, &mut seen, &mut out);
    out
}

fn op_params(op: &PlanOp) -> String {
    match op {
        PlanOp::Fetch { label, ty, is_leaf } => {
            let kind = match ty {
                NodeType::Struct => "struct",
                NodeType::Text => "text",
            };
            let leaf = if *is_leaf { ", leaf" } else { "" };
            format!(" {kind} \"{label}\"{leaf}")
        }
        PlanOp::Shift { cost, .. } => format!(" +{cost}"),
        PlanOp::Merge { c_ren, .. } => format!(" ren+{c_ren}"),
        PlanOp::OuterJoin { delcost, .. } => format!(" del+{delcost}"),
        _ => String::new(),
    }
}

/// A 64-bit FNV-1a fingerprint of the plan's *shape*: the deterministic
/// `render` text (operators, parameters, sharing structure), independent
/// of runtime counts. Two queries — from any surface — that compile to
/// byte-identical plans have equal fingerprints, which is what
/// `--explain --format json` exposes for cross-surface plan diffing.
pub fn fingerprint(plan: &Plan) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in render(plan, None).bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders a plan as a JSON document for `--explain --format json`
/// (mirroring `approxql-lint --format json`): the operator DAG with
/// parameters, inputs and use counts, the wave schedule, and the shape
/// [`fingerprint`]. `counts` adds an `"entries"` member per operator.
/// Deterministic and compact; handles are the `ops` array indices.
pub fn render_json(plan: &Plan, counts: Option<&[u64]>) -> String {
    let mut out = String::from("{\"v\":1,\"fingerprint\":");
    let _ = write!(out, "\"{:#018x}\"", fingerprint(plan));
    out.push_str(",\"ops\":[");
    for (h, op) in plan.ops().iter().enumerate() {
        if h > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"id\":{h},\"op\":\"{}\"", op.name());
        let params = op_params(op);
        if !params.is_empty() {
            out.push_str(",\"params\":");
            approxql_query::json::write_str(&mut out, params.trim_start());
        }
        out.push_str(",\"inputs\":[");
        for (i, input) in op.inputs().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{input}");
        }
        let _ = write!(out, "],\"uses\":{}", plan.use_count(h));
        if let Some(n) = counts.and_then(|c| c.get(h)) {
            let _ = write!(out, ",\"entries\":{n}");
        }
        out.push('}');
    }
    let _ = write!(
        out,
        "],\"result\":{},\"root_list\":{},\"waves\":[",
        plan.result(),
        plan.root_list()
    );
    for (w, wave) in plan.waves().iter().enumerate() {
        if w > 0 {
            out.push(',');
        }
        out.push('[');
        for (i, h) in wave.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{h}");
        }
        out.push(']');
    }
    let _ = write!(out, "],\"cse_reuses\":{}}}", plan.cse_reuses());
    out
}

fn render_node(
    plan: &Plan,
    h: PlanHandle,
    indent: usize,
    counts: Option<&[u64]>,
    seen: &mut [bool],
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    let op = &plan.ops()[h];
    if seen[h] {
        let _ = writeln!(out, "{pad}#{h} {} (see above)", op.name());
        return;
    }
    seen[h] = true;
    let shared = if plan.use_count(h) > 1 {
        format!(" shared ×{}", plan.use_count(h))
    } else {
        String::new()
    };
    let entries = counts
        .and_then(|c| c.get(h))
        .map(|n| format!(" — {n} entries"))
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "{pad}#{h} {}{}{shared}{entries}",
        op.name(),
        op_params(op)
    );
    for i in op.inputs() {
        render_node(plan, i, indent + 1, counts, seen, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_cost::CostModel;
    use approxql_query::parse_query;

    fn plan_for(q: &str, costs: &CostModel) -> Plan {
        let query = parse_query(q).unwrap();
        let ex = ExpandedQuery::build(&query, costs);
        compile(&ex).unwrap()
    }

    #[test]
    fn simple_chain_has_no_sharing() {
        let p = plan_for(r#"a[b["w"]]"#, &CostModel::new());
        assert_eq!(p.cse_reuses(), 0);
        assert_eq!(p.shared_ops(), 0);
        // fetch a, fetch b, fetch w, outerjoin, join, sort_best
        assert_eq!(p.ops().len(), 6);
        assert!(matches!(p.ops()[p.result()], PlanOp::SortBest { .. }));
    }

    #[test]
    fn fingerprint_tracks_plan_shape() {
        let costs = CostModel::new();
        let a = plan_for(r#"a[b["w"]]"#, &costs);
        let same = plan_for(r#"a[b["w"]]"#, &costs);
        let other = plan_for(r#"a[b["v"]]"#, &costs);
        assert_eq!(fingerprint(&a), fingerprint(&same));
        assert_ne!(fingerprint(&a), fingerprint(&other));
    }

    #[test]
    fn render_json_is_valid_and_complete() {
        let p = plan_for(r#"a[b["w"]]"#, &CostModel::new());
        let counts: Vec<u64> = (0..p.ops().len() as u64).collect();
        let doc = approxql_query::json::parse(&render_json(&p, Some(&counts))).unwrap();
        assert_eq!(doc.get("v").unwrap().as_uint(), Some(1));
        let fp = doc.get("fingerprint").unwrap().as_str().unwrap().to_owned();
        assert_eq!(fp, format!("{:#018x}", fingerprint(&p)));
        let ops = doc.get("ops").unwrap().as_arr().unwrap();
        assert_eq!(ops.len(), p.ops().len());
        assert_eq!(ops[0].get("op").unwrap().as_str(), Some("fetch"));
        assert!(ops[0]
            .get("params")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("struct"));
        assert_eq!(ops[3].get("entries").unwrap().as_uint(), Some(3));
        assert_eq!(
            doc.get("result").unwrap().as_uint(),
            Some(p.result() as u64)
        );
        assert_eq!(
            doc.get("waves").unwrap().as_arr().unwrap().len(),
            p.waves().len()
        );
        // Without counts there is no "entries" member.
        let bare = approxql_query::json::parse(&render_json(&p, None)).unwrap();
        let bare_ops = bare.get("ops").unwrap().as_arr().unwrap();
        assert!(bare_ops.iter().all(|o| o.get("entries").is_none()));
    }

    #[test]
    fn renamings_share_the_inner_subtree() {
        let costs = CostModel::builder()
            .insert_default(1)
            .rename(NodeType::Struct, "a", "x", Cost::finite(2))
            .rename(NodeType::Struct, "a", "y", Cost::finite(3))
            .build();
        let p = plan_for(r#"a[b["w"]]"#, &costs);
        // The child's Join differs per ancestor (a, x, y), but the inner
        // OuterJoin(fetch b, fetch w) subtree is compiled once.
        assert!(p.cse_reuses() > 0, "expected CSE reuses, got 0");
        let outerjoins = p
            .ops()
            .iter()
            .filter(|o| matches!(o, PlanOp::OuterJoin { .. }))
            .count();
        assert_eq!(outerjoins, 1);
        let joins = p
            .ops()
            .iter()
            .filter(|o| matches!(o, PlanOp::Join { .. }))
            .count();
        assert_eq!(joins, 3);
    }

    #[test]
    fn deletion_bridges_share_the_bridged_child() {
        let costs = CostModel::builder()
            .insert_default(1)
            .delete(NodeType::Struct, "b", Cost::finite(2))
            .build();
        let p = plan_for(r#"a[b["w"]]"#, &costs);
        // Deletion of b: Or(Join(b, leaf-under-b), Shift(leaf-under-a)).
        assert!(p.ops().iter().any(|o| matches!(o, PlanOp::Union { .. })));
        assert!(p.ops().iter().any(|o| matches!(o, PlanOp::Shift { .. })));
        // The leaf's fetch is shared between both branches.
        assert!(p.shared_ops() > 0);
    }

    #[test]
    fn waves_respect_dependencies() {
        let costs = CostModel::builder()
            .insert_default(1)
            .rename(NodeType::Struct, "b", "c", Cost::finite(2))
            .delete(NodeType::Text, "w", Cost::finite(1))
            .build();
        let p = plan_for(r#"a[b["w" and "v"]]"#, &costs);
        let mut wave_of = vec![usize::MAX; p.ops().len()];
        for (wi, wave) in p.waves().iter().enumerate() {
            for &h in wave {
                wave_of[h] = wi;
            }
        }
        for (h, op) in p.ops().iter().enumerate() {
            if h == p.result() {
                continue;
            }
            assert_ne!(wave_of[h], usize::MAX, "op {h} unscheduled");
            for i in op.inputs() {
                assert!(wave_of[i] < wave_of[h], "op {h} scheduled before input {i}");
            }
        }
        // Every op except SortBest is scheduled exactly once.
        let scheduled: usize = p.waves().iter().map(|w| w.len()).sum();
        assert_eq!(scheduled, p.ops().len() - 1);
    }

    #[test]
    fn non_selector_root_is_an_error() {
        let query = parse_query(r#"a["w"]"#).unwrap();
        let mut ex = ExpandedQuery::build(&query, &CostModel::new());
        // Corrupt the arena: point the root at the And/Or-free leaf's
        // position and splice in an And root.
        let leaf = 0;
        ex.nodes.push(ExpandedNode::And {
            left: leaf,
            right: leaf,
        });
        ex.root = ex.nodes.len() - 1;
        assert!(matches!(compile(&ex), Err(PlanError::NonSelectorRoot)));
    }

    #[test]
    fn render_marks_shared_nodes_once() {
        let costs = CostModel::builder()
            .insert_default(1)
            .rename(NodeType::Struct, "a", "x", Cost::finite(2))
            .build();
        let p = plan_for(r#"a[b["w"]]"#, &costs);
        let text = render(&p, None);
        assert!(text.contains("shared ×"), "no sharing annotation:\n{text}");
        // Every operator prints its full line exactly once; repeat visits
        // collapse to back-references.
        let first_prints = text.lines().filter(|l| !l.contains("(see above)")).count();
        assert_eq!(first_prints, p.ops().len());
    }
}
