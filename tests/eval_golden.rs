//! Golden-file tests for the `approxql eval` report rendering, plus the
//! CI-pinned quality metrics on the committed figure-2 dataset.
//!
//! The table and JSON renderings are part of the CLI contract. Both are
//! generated with timing disabled, which omits every latency field — the
//! remaining output is a pure function of the committed corpus and
//! dataset, so it is byte-stable across machines and thread counts.
//! Regenerate a golden file with
//! `approxql eval <db> datasets/figure2.json [--json] --no-timing`
//! and review the diff.

use approxql::crates::eval::dataset::Dataset;
use approxql::crates::eval::{run, RunOptions};
use approxql::{CostModel, Database};

const CATALOG: &str = include_str!("../datasets/catalog.xml");
const FIGURE2: &str = include_str!("../datasets/figure2.json");

fn report() -> approxql::crates::eval::EvalReport {
    // The committed ground truth was generated against a database built
    // from `datasets/catalog.xml` with no build-time cost table (the
    // dataset carries its cost tables inline).
    let db = Database::from_xml_str(CATALOG, CostModel::new()).unwrap();
    let ds = Dataset::parse(FIGURE2).unwrap();
    let opts = RunOptions {
        timing: false,
        ..RunOptions::default()
    };
    run(&db, &ds, opts).unwrap()
}

#[test]
fn eval_table_matches_golden() {
    assert_eq!(
        report().render_table(),
        include_str!("golden/eval_table.txt")
    );
}

#[test]
fn eval_json_matches_golden() {
    assert_eq!(report().render_json(), include_str!("golden/eval_json.txt"));
}

#[test]
fn figure2_metrics_are_pinned() {
    // The acceptance pins, independent of the full-byte goldens: every
    // figure-2 run scores perfectly, and the schema evaluator at
    // k = unlimited reaches recall 1.0 against reference ground truth.
    let rep = report();
    assert_eq!(rep.runs.len(), 9);
    for r in &rep.runs {
        assert_eq!(r.scores.recall, 1.0, "{} {}", r.query_id, r.engine.name());
        assert_eq!(r.scores.ndcg, 1.0, "{} {}", r.query_id, r.engine.name());
    }
    let unlimited = rep
        .runs
        .iter()
        .find(|r| r.query_id == "all-cds")
        .expect("committed dataset has the unlimited schema query");
    assert_eq!(unlimited.engine.name(), "schema");
    assert_eq!(unlimited.scores.recall, 1.0);
    assert_eq!(unlimited.truth_len, 5);
}

#[test]
fn figure2_json_mirror_matches_classic_exactly() {
    // `datasets/figure2_json.json` is the same workload spelled in the
    // JSON query-IR surface (generated with `approxql translate`), with
    // identical expected arrays. Because every surface lowers through one
    // normalized AST, the evaluation report must match the classic
    // dataset run-for-run: same ids, engines, result counts, and pinned
    // quality scores.
    let db = Database::from_xml_str(CATALOG, CostModel::new()).unwrap();
    let classic = Dataset::parse(FIGURE2).unwrap();
    let mirror = Dataset::parse(include_str!("../datasets/figure2_json.json")).unwrap();
    assert_eq!(mirror.queries.len(), classic.queries.len());
    let opts = RunOptions {
        timing: false,
        ..RunOptions::default()
    };
    let classic_rep = run(&db, &classic, opts).unwrap();
    let mirror_rep = run(&db, &mirror, opts).unwrap();
    assert_eq!(mirror_rep.runs.len(), classic_rep.runs.len());
    for (m, c) in mirror_rep.runs.iter().zip(&classic_rep.runs) {
        assert_eq!(m.query_id, c.query_id);
        assert_eq!(m.engine, c.engine);
        assert_eq!(m.k, c.k);
        assert_eq!(m.retrieved, c.retrieved, "{}", m.query_id);
        assert_eq!(m.truth_len, c.truth_len, "{}", m.query_id);
        assert_eq!(m.scores, c.scores, "{}", m.query_id);
    }
    assert_eq!(mirror_rep.summaries.len(), classic_rep.summaries.len());
    for (m, c) in mirror_rep.summaries.iter().zip(&classic_rep.summaries) {
        // Everything but the wall-clock percentiles must agree.
        assert_eq!(m.engine, c.engine);
        assert_eq!(m.queries, c.queries);
        assert_eq!(m.avg_recall, c.avg_recall);
        assert_eq!(m.avg_precision, c.avg_precision);
        assert_eq!(m.mean_rr, c.mean_rr);
        assert_eq!(m.mean_ndcg, c.mean_ndcg);
    }
}

#[test]
fn committed_truth_matches_regenerated_truth() {
    // The committed `expected` arrays must stay in sync with what
    // gen-truth produces today; a silent evaluator change that shifts
    // reference results fails here before it fails in CI.
    use approxql::crates::eval::gen_truth;
    let db = Database::from_xml_str(CATALOG, CostModel::new()).unwrap();
    let committed = Dataset::parse(FIGURE2).unwrap();
    let mut regenerated = committed.clone();
    gen_truth(&db, &mut regenerated, RunOptions::default()).unwrap();
    assert_eq!(regenerated, committed);
    assert_eq!(regenerated.to_json(), FIGURE2);
}
