//! End-to-end tests over synthetic collections: the full pipeline from
//! generation through indexing, schema construction, both evaluators, and
//! persistence.

use approxql::crates::core::schema_eval::SchemaEvalConfig;
use approxql::crates::core::EvalOptions;
use approxql::crates::gen::{
    DataGenConfig, DataGenerator, QueryGenConfig, QueryGenerator, PATTERN_1, PATTERN_2, PATTERN_3,
};
use approxql::{Cost, CostModel, Database};

fn small_collection(seed: u64) -> Database {
    let cfg = DataGenConfig {
        element_count: 1_500,
        element_names: 40,
        vocabulary: 200,
        word_occurrences: 6_000,
        seed,
        ..DataGenConfig::default()
    };
    let tree = DataGenerator::new(cfg).generate_tree(&CostModel::new());
    Database::from_tree(tree, CostModel::new())
}

#[test]
fn generated_collection_statistics() {
    let db = small_collection(1);
    let stats = db.tree().stats();
    assert_eq!(stats.element_count, 1_500);
    assert_eq!(stats.word_count, 6_000);
    let sstats = db.schema().stats();
    assert!(sstats.schema_nodes < stats.node_count / 5);
}

#[test]
fn both_evaluators_agree_across_patterns_and_renamings() {
    let db = small_collection(2);
    // The renaming counts are graded per pattern: large Boolean queries
    // with many renamings have combinatorially many second-level queries,
    // and when a query has fewer results than requested the driver must
    // exhaust them (the algorithm's documented worst case) — fine for the
    // benchmarks, too slow for a unit suite.
    let series: [(&str, u64, &[usize]); 3] = [
        (PATTERN_1, 10, &[0, 5, 10]),
        (PATTERN_2, 11, &[0, 5]),
        (PATTERN_3, 12, &[0]),
    ];
    for (pattern, seed, renaming_counts) in series {
        for &renamings in renaming_counts {
            let mut qgen = QueryGenerator::new(
                db.tree(),
                db.labels(),
                QueryGenConfig {
                    renamings_per_label: renamings,
                    seed: seed + renamings as u64,
                    ..QueryGenConfig::default()
                },
            );
            for gq in qgen.generate_batch(pattern, 3) {
                let db_q = Database::from_tree(db.tree().clone(), gq.costs.clone());
                let direct = db_q.query_direct(&gq.query, None).unwrap();
                // Ask the schema path for (up to) the known total: asking
                // beyond it forces an exhaustive closure enumeration,
                // which is the known worst case of the algorithm.
                let n = direct.len().clamp(1, 20);
                let schema = db_q.query_schema(&gq.query, n).unwrap();
                assert_eq!(schema.len(), direct.len().min(n), "count for {}", gq.query);
                // Cost sequences agree (tie order at the cut may differ).
                let dc: Vec<Cost> = direct.iter().take(n).map(|h| h.cost).collect();
                let sc: Vec<Cost> = schema.iter().map(|h| h.cost).collect();
                assert_eq!(sc, dc, "costs for {}", gq.query);
            }
        }
    }
}

#[test]
fn best_n_is_a_prefix_of_best_m() {
    let db = small_collection(3);
    let mut qgen = QueryGenerator::new(
        db.tree(),
        db.labels(),
        QueryGenConfig {
            renamings_per_label: 5,
            seed: 99,
            ..QueryGenConfig::default()
        },
    );
    let gq = qgen.generate(PATTERN_2);
    let db_q = Database::from_tree(db.tree().clone(), gq.costs.clone());
    let big = db_q.query_schema(&gq.query, 50).unwrap();
    let small = db_q.query_schema(&gq.query, 5).unwrap();
    let big_costs: Vec<Cost> = big.iter().take(small.len()).map(|h| h.cost).collect();
    let small_costs: Vec<Cost> = small.iter().map(|h| h.cost).collect();
    assert_eq!(small_costs, big_costs);
}

#[test]
fn save_open_roundtrip_preserves_answers() {
    let dir = std::env::temp_dir().join(format!("axql-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.axql");
    let db = small_collection(4);
    db.save(&path).unwrap();
    let reopened = Database::open(&path).unwrap();
    assert_eq!(reopened.tree().len(), db.tree().len());

    let mut qgen = QueryGenerator::new(db.tree(), db.labels(), QueryGenConfig::default());
    for gq in qgen.generate_batch(PATTERN_1, 5) {
        // Note: saved databases keep their own cost model; for per-query
        // costs we re-derive the views (insert costs are identical).
        let before = Database::from_tree(db.tree().clone(), gq.costs.clone())
            .query_direct(&gq.query, Some(10))
            .unwrap();
        let after = Database::from_tree(reopened.tree().clone(), gq.costs.clone())
            .query_direct(&gq.query, Some(10))
            .unwrap();
        assert_eq!(
            before, after,
            "answers changed after reopen for {}",
            gq.query
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stats_are_populated() {
    let db = small_collection(5);
    let mut qgen = QueryGenerator::new(
        db.tree(),
        db.labels(),
        QueryGenConfig {
            renamings_per_label: 5,
            ..QueryGenConfig::default()
        },
    );
    let gq = qgen.generate(PATTERN_2);
    let db_q = Database::from_tree(db.tree().clone(), gq.costs.clone());
    let (_, dstats) = db_q
        .query_direct_with(&gq.query, None, EvalOptions::default())
        .unwrap();
    assert!(dstats.fetches > 0);
    assert!(dstats.ops > 0);
    let (_, sstats) = db_q
        .query_schema_with(
            &gq.query,
            5,
            EvalOptions::default(),
            SchemaEvalConfig::default(),
        )
        .unwrap();
    assert!(sstats.rounds >= 1);
    assert!(sstats.fetches > 0);
}

#[test]
fn exact_subtree_queries_always_match_their_source() {
    // Pick real paths from the generated data and query for them exactly:
    // the owning element must come back at cost 0.
    let db = small_collection(6);
    let tree = db.tree();
    use approxql::NodeType;
    let mut checked = 0;
    for n in tree.nodes().skip(1) {
        if tree.node_type(n) != NodeType::Text {
            continue;
        }
        let parent = tree.parent(n).unwrap();
        let grand = match tree.parent(parent) {
            Some(g) if g.0 != 0 => g,
            _ => continue,
        };
        let query = format!(
            "{}[{}[\"{}\"]]",
            tree.label(grand),
            tree.label(parent),
            tree.label(n)
        );
        let hits = db.query_direct(&query, None).unwrap();
        assert!(
            hits.iter().any(|h| h.root == grand && h.cost == Cost::ZERO),
            "exact query {query} did not return its source {grand:?}"
        );
        checked += 1;
        if checked >= 25 {
            break;
        }
    }
    assert!(checked > 0);
}
