//! Counter-based regression tests: the per-layer operation counts of the
//! metrics registry are pinned to exact values for fixed inputs.
//!
//! These tests protect the *work* done by the evaluators, not just their
//! results: an accidental loss of memoization, a broken merge that
//! re-fetches postings, or a driver that silently runs extra rounds all
//! change these counts long before they change any query answer.
//!
//! The registry is thread-local and every `#[test]` runs on its own
//! thread, so the pinned diffs are stable under parallel test execution.
//! If an intentional algorithm change shifts a count, update the pinned
//! value *after* confirming the delta is explained by the change.

use approxql::crates::gen::{DataGenConfig, DataGenerator};
use approxql::{Cost, CostModel, Database, Metric, MetricsSnapshot};

/// The Figure 1/3 sound-storage catalog used throughout the paper.
const CATALOG: &str = "<catalog>\
    <cd><title>piano concerto</title><composer>rachmaninov</composer></cd>\
    <cd><title>kinderszenen</title>\
        <tracks><track><title>vivace piano</title></track></tracks></cd>\
    </catalog>";

/// The paper's Section 6 example costs (delete concerto=6, track=3, …).
fn paper_costs() -> CostModel {
    approxql::tables::paper_section6_costs()
}

fn diff_over(f: impl FnOnce()) -> MetricsSnapshot {
    let before = approxql::metrics_snapshot();
    f();
    approxql::metrics_snapshot().diff(&before)
}

/// Asserts that exactly the listed counters are nonzero, with exactly the
/// listed values. The full nonzero set is compared, so a new operation
/// sneaking into the measured region fails the test too.
fn assert_counts(diff: &MetricsSnapshot, expected: &[(Metric, u64)]) {
    let got: Vec<(Metric, u64)> = diff.counters().filter(|&(_, v)| v != 0).collect();
    let want: Vec<(Metric, u64)> = expected.to_vec();
    assert_eq!(
        got, want,
        "\noperation counts changed;\n  got:  {got:?}\n  want: {want:?}"
    );
}

#[test]
fn direct_figure2_query_op_counts() {
    let db = Database::from_xml_str(CATALOG, paper_costs()).unwrap();
    let diff = diff_over(|| {
        let hits = db
            .query_direct(
                r#"cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]]"#,
                None,
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].cost, Cost::finite(3));
    });
    assert_counts(
        &diff,
        &[
            (Metric::IndexLabelFetches, 7),
            (Metric::IndexPostingsFetched, 11),
            (Metric::ListFetchOps, 7),
            (Metric::ListShiftOps, 10),
            (Metric::ListMergeOps, 5),
            (Metric::ListJoinOps, 10),
            (Metric::ListOuterjoinOps, 17),
            (Metric::ListIntersectOps, 9),
            (Metric::ListUnionOps, 10),
            (Metric::ListSortOps, 1),
            (Metric::ListEntriesProduced, 51),
            (Metric::PlanCompile, 1),
            (Metric::PlanCacheMisses, 1),
            (Metric::PlanCseReuses, 31),
            (Metric::PostingsBlocksDecoded, 18),
            (Metric::PostingsBlocksSkipped, 6),
            (Metric::PostingsBytes, 106),
            (Metric::EvalDirectRuns, 1),
            (Metric::EvalDirectFetches, 12),
        ],
    );
}

#[test]
fn schema_figure2_query_op_counts() {
    let db = Database::from_xml_str(CATALOG, paper_costs()).unwrap();
    let diff = diff_over(|| {
        let hits = db
            .query_schema(
                r#"cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]]"#,
                5,
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].cost, Cost::finite(3));
    });
    assert_counts(
        &diff,
        &[
            (Metric::IndexLabelFetches, 22),
            (Metric::IndexPostingsFetched, 28),
            (Metric::IndexSecondaryFetches, 130),
            (Metric::IndexSecondaryRows, 171),
            (Metric::TopkOps, 207),
            (Metric::TopkEntriesProduced, 525),
            (Metric::PlanCompile, 1),
            (Metric::PlanCacheMisses, 1),
            (Metric::PlanCseReuses, 31),
            (Metric::PostingsBlocksDecoded, 22),
            (Metric::PostingsBytes, 90),
            (Metric::EvalSchemaRuns, 3),
            (Metric::EvalSchemaRounds, 3),
            (Metric::EvalSecondLevelQueries, 32),
            (Metric::EvalSecondaryRows, 16),
        ],
    );
}

#[test]
fn plan_cache_and_cse_op_counts() {
    // One compile, one cache miss, then only hits: the keyed plan cache
    // answers repeats (including whitespace variants of the same query)
    // without recompiling, and CSE sharing during the single compile is
    // reported exactly once.
    let db = Database::from_xml_str(CATALOG, paper_costs()).unwrap();
    let query = r#"cd[track[title["piano"]]]"#;
    let first = diff_over(|| {
        db.query_direct(query, None).unwrap();
    });
    let repeats = diff_over(|| {
        db.query_direct(query, None).unwrap();
        // Normalizes through `Query::to_string`, so it keys identically.
        db.query_direct(r#"cd[ track [ title [ "piano" ] ] ]"#, None)
            .unwrap();
    });
    assert_eq!(first.get(Metric::PlanCompile), 1);
    assert_eq!(first.get(Metric::PlanCacheMisses), 1);
    assert_eq!(first.get(Metric::PlanCacheHits), 0);
    // The deletion-or bridges of `cd[track[...]]` share their bridged
    // child subplans; the compiler must report that sharing.
    assert!(first.get(Metric::PlanCseReuses) > 0);
    assert_eq!(repeats.get(Metric::PlanCompile), 0);
    assert_eq!(repeats.get(Metric::PlanCacheMisses), 0);
    assert_eq!(repeats.get(Metric::PlanCacheHits), 2);
    assert_eq!(repeats.get(Metric::PlanCseReuses), 0);
    // Cache hits execute the identical DAG: the evaluation work per run
    // is exactly double the first run's.
    for m in [
        Metric::IndexLabelFetches,
        Metric::ListEntriesProduced,
        Metric::EvalDirectFetches,
    ] {
        assert_eq!(repeats.get(m), 2 * first.get(m), "{}", m.name());
    }
}

#[test]
fn save_open_storage_op_counts() {
    let dir = std::env::temp_dir().join(format!("axql-metrics-reg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.axql");
    let db = Database::from_xml_str(CATALOG, paper_costs()).unwrap();
    let save_diff = diff_over(|| db.save(&path).unwrap());
    let open_diff = diff_over(|| {
        let db2 = Database::open(&path).unwrap();
        assert_eq!(db2.tree().stats().node_count, db.tree().stats().node_count);
    });
    std::fs::remove_dir_all(&dir).unwrap();
    // The segmented layout (DESIGN.md §15) writes more, smaller keys than
    // the old monolithic tree blob: per-document segments, the secondary
    // index, and the schema tree now persist too.
    assert_counts(
        &save_diff,
        &[
            (Metric::PagerPageReads, 30),
            (Metric::PagerPageWrites, 61),
            (Metric::PagerPageAllocs, 34),
            (Metric::PagerBackendWrites, 34),
            (Metric::PagerFlushes, 2),
            (Metric::StoreCommits, 2),
            (Metric::BtreeInserts, 30),
            (Metric::BtreeNodeReads, 30),
        ],
    );
    assert_counts(
        &open_diff,
        &[
            (Metric::PagerPageReads, 66),
            (Metric::PagerCacheMisses, 31),
            (Metric::BtreeGets, 5),
            (Metric::BtreeNodeReads, 36),
            (Metric::BtreeScanSteps, 27),
            // Compressed frames, now covering both the label and the
            // secondary index (the schema is reassembled, not rebuilt).
            (Metric::IndexBytesDecoded, 669),
        ],
    );
}

#[test]
fn generated_collection_op_counts() {
    // A small deterministic synthetic collection (Section 8.1 generator,
    // fixed seed): both evaluators' op counts pinned for one query.
    let mut cfg = DataGenConfig::paper_scale_divided(1000); // 1,000 elements
    cfg.seed = 42;
    let costs = CostModel::new();
    let tree = DataGenerator::new(cfg).generate_tree(&costs);
    let db = Database::from_tree(tree, costs);
    let query = r#"name001[name002 and "term1"]"#;
    let mut direct_hits = Vec::new();
    let mut schema_hits = Vec::new();
    let direct_diff = diff_over(|| {
        direct_hits = db.query_direct(query, Some(10)).unwrap();
    });
    let schema_diff = diff_over(|| {
        schema_hits = db.query_schema(query, 10).unwrap();
    });
    let pairs =
        |hits: &[approxql::QueryHit]| hits.iter().map(|h| (h.root, h.cost)).collect::<Vec<_>>();
    assert_eq!(pairs(&direct_hits), pairs(&schema_hits));
    assert_counts(
        &direct_diff,
        &[
            (Metric::IndexLabelFetches, 3),
            (Metric::IndexPostingsFetched, 405),
            (Metric::ListFetchOps, 3),
            (Metric::ListOuterjoinOps, 2),
            (Metric::ListIntersectOps, 1),
            (Metric::ListSortOps, 1),
            (Metric::ListEntriesProduced, 407),
            (Metric::PlanCompile, 1),
            (Metric::PlanCacheMisses, 1),
            // 7 fetched frames total; the selective join skips 2 outright.
            (Metric::PostingsBlocksDecoded, 5),
            (Metric::PostingsBlocksSkipped, 2),
            (Metric::PostingsBytes, 1616),
            (Metric::EvalDirectRuns, 1),
            (Metric::EvalDirectFetches, 3),
        ],
    );
    assert_counts(
        &schema_diff,
        &[
            (Metric::IndexLabelFetches, 7),
            (Metric::IndexPostingsFetched, 155),
            (Metric::IndexSecondaryFetches, 1),
            (Metric::IndexSecondaryRows, 2),
            (Metric::TopkOps, 14),
            (Metric::TopkEntriesProduced, 208),
            // The direct run above already compiled this query's plan, so
            // the schema evaluator finds it in the shared cache.
            (Metric::PlanCacheHits, 1),
            (Metric::PostingsBlocksDecoded, 7),
            (Metric::PostingsBytes, 613),
            (Metric::EvalSchemaRuns, 2),
            (Metric::EvalSchemaRounds, 2),
        ],
    );
}

#[test]
fn repeated_runs_count_identically() {
    // Evaluation is deterministic: the same query twice produces the
    // identical diff (this is what makes the pinned tests meaningful).
    let db = Database::from_xml_str(CATALOG, paper_costs()).unwrap();
    let query = r#"cd[title["piano" and "concerto"]]"#;
    // Warm the plan cache so both measured rounds take the same path
    // (hit) instead of the first one paying the compile.
    db.query_direct(query, None).unwrap();
    let first = diff_over(|| {
        db.query_direct(query, None).unwrap();
        db.query_schema(query, 5).unwrap();
    });
    let second = diff_over(|| {
        db.query_direct(query, None).unwrap();
        db.query_schema(query, 5).unwrap();
    });
    let first_counts: Vec<(Metric, u64)> = first.counters().collect();
    let second_counts: Vec<(Metric, u64)> = second.counters().collect();
    assert_eq!(first_counts, second_counts);
    assert!(!first.is_zero());
}

#[test]
fn eval_harness_op_counts() {
    // The retrieval-quality harness reports its own work: one
    // `eval.harness_runs` per invocation (gen-truth or scoring), one
    // `eval.harness_queries` per (query, evaluator) execution,
    // `eval.truth_rows` for emitted ground truth, and
    // `eval.harness_truth_hits` for retrieved results matching truth.
    use approxql::crates::eval::dataset::Dataset;
    use approxql::crates::eval::{gen_truth, run, RunOptions};
    let db = Database::from_xml_str(CATALOG, paper_costs()).unwrap();
    let mut ds = Dataset::parse(
        r#"{"version":1,"name":"pins","defaults":{"k":5,"evaluator":"both"},
            "queries":[
              {"id":"q1","query":"cd[title[\"piano\"]]"},
              {"id":"q2","query":"cd[composer[\"rachmaninov\"]]","evaluator":"direct"}]}"#,
    )
    .unwrap();
    let truth_diff = diff_over(|| {
        gen_truth(&db, &mut ds, RunOptions::default()).unwrap();
    });
    let truth_rows: usize = ds
        .queries
        .iter()
        .map(|q| q.expected.as_ref().unwrap().len())
        .sum();
    assert_eq!(truth_rows, 3, "catalog truth size shifted");
    assert_eq!(truth_diff.get(Metric::EvalHarnessRuns), 1);
    assert_eq!(truth_diff.get(Metric::EvalHarnessQueries), 2);
    assert_eq!(truth_diff.get(Metric::EvalTruthRows), 3);
    assert_eq!(truth_diff.get(Metric::EvalHarnessTruthHits), 0);
    let run_diff = diff_over(|| {
        let report = run(&db, &ds, RunOptions::default()).unwrap();
        // q1 runs on both evaluators, q2 only direct.
        assert_eq!(report.runs.len(), 3);
    });
    assert_eq!(run_diff.get(Metric::EvalHarnessRuns), 1);
    assert_eq!(run_diff.get(Metric::EvalHarnessQueries), 3);
    // Every run retrieves its full truth at k=5: q1 twice (2 rows each)
    // plus q2 once (1 row).
    assert_eq!(run_diff.get(Metric::EvalHarnessTruthHits), 5);
    assert_eq!(run_diff.get(Metric::EvalTruthRows), 0);
}

#[test]
fn registry_is_exactly_the_documented_catalogue() {
    // Pins the *names* of every counter and timer, in registry order. The
    // `metric-coverage` lint rule cross-checks this same set against the
    // registry in `crates/metrics` and the catalogue in DESIGN.md §8.1;
    // together they guarantee no metric can be added, renamed, or removed
    // without touching all three surfaces in one reviewed diff.
    use approxql::TimerMetric;
    let counters: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
    assert_eq!(
        counters,
        [
            (Metric::PagerPageReads, "pager.page_reads"),
            (Metric::PagerCacheMisses, "pager.cache_misses"),
            (Metric::PagerPageWrites, "pager.page_writes"),
            (Metric::PagerPageAllocs, "pager.page_allocs"),
            (Metric::PagerBackendWrites, "pager.backend_writes"),
            (Metric::PagerFlushes, "pager.flushes"),
            (Metric::PagerEvictions, "pager.evictions"),
            (Metric::PagerChecksumFailures, "pager.checksum_failures"),
            (Metric::StoreCommits, "store.commits"),
            (Metric::StoreRecoveryRollbacks, "store.recovery_rollbacks"),
            (Metric::StoreDocInserts, "store.doc_inserts"),
            (Metric::StoreDocDeletes, "store.doc_deletes"),
            (Metric::BtreeGets, "btree.gets"),
            (Metric::BtreeInserts, "btree.inserts"),
            (Metric::BtreeDeletes, "btree.deletes"),
            (Metric::BtreeNodeReads, "btree.node_reads"),
            (Metric::BtreeNodeSplits, "btree.node_splits"),
            (Metric::BtreeScanSteps, "btree.scan_steps"),
            (Metric::IndexLabelFetches, "index.label_fetches"),
            (Metric::IndexPostingsFetched, "index.postings_fetched"),
            (Metric::IndexSecondaryFetches, "index.secondary_fetches"),
            (Metric::IndexSecondaryRows, "index.secondary_rows"),
            (Metric::IndexBytesDecoded, "index.bytes_decoded"),
            (Metric::ListFetchOps, "list.fetch_ops"),
            (Metric::ListShiftOps, "list.shift_ops"),
            (Metric::ListMergeOps, "list.merge_ops"),
            (Metric::ListJoinOps, "list.join_ops"),
            (Metric::ListOuterjoinOps, "list.outerjoin_ops"),
            (Metric::ListIntersectOps, "list.intersect_ops"),
            (Metric::ListUnionOps, "list.union_ops"),
            (Metric::ListSortOps, "list.sort_ops"),
            (Metric::ListEntriesProduced, "list.entries_produced"),
            (Metric::TopkOps, "topk.ops"),
            (Metric::TopkEntriesProduced, "topk.entries_produced"),
            (Metric::PlanCompile, "plan.compile"),
            (Metric::PlanCacheHits, "plan.cache_hits"),
            (Metric::PlanCacheMisses, "plan.cache_misses"),
            (Metric::PlanCseReuses, "plan.cse_reuses"),
            (Metric::PlanCacheInvalidations, "plan.cache_invalidations"),
            (Metric::PostingsBlocksDecoded, "postings.blocks_decoded"),
            (Metric::PostingsBlocksSkipped, "postings.blocks_skipped"),
            (Metric::PostingsBytes, "postings.bytes"),
            (Metric::EvalDirectRuns, "eval.direct_runs"),
            (Metric::EvalDirectFetches, "eval.direct_fetches"),
            (Metric::EvalSchemaRuns, "eval.schema_runs"),
            (Metric::EvalSchemaRounds, "eval.schema_rounds"),
            (Metric::EvalSecondLevelQueries, "eval.second_level_queries"),
            (Metric::EvalSecondaryRows, "eval.secondary_rows"),
            (Metric::EvalHarnessRuns, "eval.harness_runs"),
            (Metric::EvalHarnessQueries, "eval.harness_queries"),
            (Metric::EvalHarnessTruthHits, "eval.harness_truth_hits"),
            (Metric::EvalTruthRows, "eval.truth_rows"),
        ]
        .map(|(_, name)| name)
    );
    let timers: Vec<&str> = TimerMetric::ALL.iter().map(|t| t.name()).collect();
    assert_eq!(
        timers,
        [
            (TimerMetric::EvalDirect, "eval.direct"),
            (TimerMetric::EvalSchema, "eval.schema"),
            (TimerMetric::SecondLevel, "eval.second_level"),
            (TimerMetric::StoreCommit, "storage.commit"),
            (TimerMetric::IndexBuild, "index.build"),
        ]
        .map(|(_, name)| name)
    );
}
