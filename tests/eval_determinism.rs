//! Thread-count determinism of the retrieval-quality harness, mirroring
//! tests/parallel_determinism.rs one level up: `approxql eval` scoring
//! and `--gen-truth` must produce byte-identical output at `--threads 1`
//! and `--threads 4` (and 2), including identical merged work counters.
//!
//! Latency output is inherently nondeterministic, so the comparison runs
//! with timing disabled — exactly the `--no-timing` reporting mode the
//! golden tests and CI pin.

use approxql::crates::eval::dataset::Dataset;
use approxql::crates::eval::{gen_truth, run, RunOptions};
use approxql::crates::gen::{DataGenConfig, DataGenerator, QueryGenConfig, QueryGenerator};
use approxql::{CostModel, Database, Metric};
use std::sync::OnceLock;

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let mut cfg = DataGenConfig::paper_scale_divided(1000); // 1,000 elements
        cfg.seed = 2002;
        let costs = CostModel::new();
        let tree = DataGenerator::new(cfg).generate_tree(&costs);
        Database::from_tree(tree, costs)
    })
}

/// A dataset emitted the same way `eval_dataset` does it: Section 8.1
/// pattern-2 queries with generated per-query cost tables (5 renamings).
fn generated_dataset() -> Dataset {
    use approxql::crates::eval::dataset::{DatasetQuery, EvaluatorSel, KSpec, Settings};
    let cfg = QueryGenConfig {
        renamings_per_label: 5,
        seed: 2287,
        ..QueryGenConfig::default()
    };
    let index = approxql::crates::index::LabelIndex::build(db().tree());
    let mut generator = QueryGenerator::new(db().tree(), &index, cfg);
    let queries = generator
        .generate_batch(approxql::crates::gen::PATTERN_2, 4)
        .into_iter()
        .enumerate()
        .map(|(i, gq)| DatasetQuery {
            id: format!("q{:02}", i + 1),
            query: gq.query,
            overrides: Settings {
                costs: Some(approxql::write_cost_file(&gq.costs)),
                ..Settings::default()
            },
            expected: None,
        })
        .collect();
    Dataset {
        name: "determinism".to_owned(),
        defaults: Settings {
            k: Some(KSpec::At(10)),
            evaluator: Some(EvaluatorSel::Both),
            ..Settings::default()
        },
        queries,
    }
}

fn opts(threads: usize) -> RunOptions {
    RunOptions {
        threads,
        timing: false,
        ..RunOptions::default()
    }
}

fn counter_diff(f: impl FnOnce()) -> Vec<(Metric, u64)> {
    let before = approxql::metrics_snapshot();
    f();
    approxql::metrics_snapshot()
        .diff(&before)
        .counters()
        .filter(|&(_, v)| v != 0)
        .collect()
}

#[test]
fn gen_truth_is_thread_count_invariant() {
    let skeleton = generated_dataset();
    let mut base = skeleton.clone();
    gen_truth(db(), &mut base, opts(1)).unwrap();
    let base_json = base.to_json();
    assert!(
        base.queries
            .iter()
            .any(|q| !q.expected.as_ref().unwrap().is_empty()),
        "degenerate dataset: no query has any reference results"
    );
    for threads in [2usize, 4] {
        let mut ds = skeleton.clone();
        gen_truth(db(), &mut ds, opts(threads)).unwrap();
        assert_eq!(
            ds.to_json(),
            base_json,
            "gen-truth output differs at {threads} threads"
        );
    }
}

#[test]
fn eval_reports_are_thread_count_invariant() {
    let mut ds = generated_dataset();
    gen_truth(db(), &mut ds, opts(1)).unwrap();
    // Warm the shared plan cache so every measured run hits it and the
    // counter comparison excludes one-time compile work.
    run(db(), &ds, opts(1)).unwrap();
    let mut base_table = String::new();
    let mut base_json = String::new();
    let base_counts = counter_diff(|| {
        let report = run(db(), &ds, opts(1)).unwrap();
        base_table = report.render_table();
        base_json = report.render_json();
    });
    for threads in [2usize, 4] {
        let mut table = String::new();
        let mut json = String::new();
        let counts = counter_diff(|| {
            let report = run(db(), &ds, opts(threads)).unwrap();
            table = report.render_table();
            json = report.render_json();
        });
        assert_eq!(table, base_table, "table differs at {threads} threads");
        assert_eq!(json, base_json, "json differs at {threads} threads");
        assert_eq!(
            counts, base_counts,
            "work counters differ at {threads} threads"
        );
    }
}

#[test]
fn committed_figure2_report_is_thread_count_invariant() {
    let catalog = include_str!("../datasets/catalog.xml");
    let figure2 = include_str!("../datasets/figure2.json");
    let db = Database::from_xml_str(catalog, CostModel::new()).unwrap();
    let ds = Dataset::parse(figure2).unwrap();
    let base = run(&db, &ds, opts(1)).unwrap().render_json();
    for threads in [2usize, 4] {
        let got = run(&db, &ds, opts(threads)).unwrap().render_json();
        assert_eq!(got, base, "figure2 report differs at {threads} threads");
    }
}
