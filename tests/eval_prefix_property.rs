//! The paper's Section 7 correctness claim, asserted directly: for any
//! collection and query, the schema-driven best-n evaluation returns a
//! *cost-ordered prefix* of the reference result list — the complete
//! cost-ranked answer set produced by the direct evaluator with no
//! truncation (the same reference `approxql eval --gen-truth` uses).
//!
//! "Prefix" is precise about ties: result costs are totally ordered, but
//! several elements can share one cost, and the best-n driver may pick
//! any of them at the truncation boundary. So we assert
//!
//! 1. the returned *cost sequence* equals the first n reference costs,
//! 2. every returned element appears in the reference list at the same
//!    cost, with no duplicates, and
//! 3. when no cost tie spans the boundary, the result is exactly the
//!    reference prefix, element for element.
//!
//! The direct evaluator's own top-n must always be the exact prefix (its
//! tie-break is the total (cost, pre) order of `sort_best`).

use approxql::crates::core::schema_eval::SchemaEvalConfig;
use approxql::crates::core::EvalOptions;
use approxql::crates::gen::{DataGenConfig, DataGenerator};
use approxql::{Cost, CostModel, Database, NodeId};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::OnceLock;

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let mut cfg = DataGenConfig::paper_scale_divided(1000); // 1,000 elements
        cfg.seed = 2002;
        let costs = CostModel::new();
        let tree = DataGenerator::new(cfg).generate_tree(&costs);
        Database::from_tree(tree, costs)
    })
}

/// Random tree-pattern queries over the generated label/word alphabet
/// (same shape as tests/parallel_determinism.rs).
fn gen_query() -> impl Strategy<Value = String> {
    let label = || (1usize..7).prop_map(|i| format!("name{i:03}"));
    let word = || (1usize..4).prop_map(|i| format!("\"term{i}\""));
    let child = prop_oneof![
        label(),
        word(),
        (label(), word()).prop_map(|(l, w)| format!("{l}[{w}]")),
        (label(), label()).prop_map(|(l, r)| format!("({l} or {r})")),
    ];
    (label(), proptest::collection::vec(child, 1..3))
        .prop_map(|(root, cs)| format!("{root}[{}]", cs.join(" and ")))
}

fn reference_list(query: &str) -> Vec<(NodeId, Cost)> {
    let (hits, _) = db()
        .query_direct_with(query, None, EvalOptions::default())
        .unwrap();
    hits.iter().map(|h| (h.root, h.cost)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schema_top_n_is_a_cost_ordered_prefix_of_the_reference(
        query in gen_query(),
        n in 1usize..16,
    ) {
        let reference = reference_list(&query);
        let by_root: HashMap<NodeId, Cost> = reference.iter().copied().collect();
        prop_assert_eq!(by_root.len(), reference.len(), "reference has duplicate roots");

        let (hits, _) = db()
            .query_schema_with(&query, n, EvalOptions::default(), SchemaEvalConfig::default())
            .unwrap();
        let got: Vec<(NodeId, Cost)> = hits.iter().map(|h| (h.root, h.cost)).collect();

        // Size: exactly n results, unless the whole answer set is smaller.
        prop_assert_eq!(got.len(), reference.len().min(n), "query {}", &query);

        // (1) The cost sequence is the first n reference costs.
        let got_costs: Vec<Cost> = got.iter().map(|&(_, c)| c).collect();
        let want_costs: Vec<Cost> = reference.iter().take(n).map(|&(_, c)| c).collect();
        prop_assert_eq!(&got_costs, &want_costs, "cost prefix broken for {}", &query);

        // (2) Every element is a reference element at its reference cost,
        //     with no duplicates among the returned roots.
        let mut seen = std::collections::HashSet::new();
        for &(root, cost) in &got {
            prop_assert!(seen.insert(root), "duplicate root {} for {}", root, &query);
            prop_assert_eq!(
                by_root.get(&root).copied(),
                Some(cost),
                "root {} not in reference at cost {} for {}", root, cost, &query
            );
        }

        // (3) With no cost tie across the truncation boundary the result
        //     is the exact reference prefix.
        let tie_at_boundary = got.len() < reference.len()
            && reference[got.len() - 1].1 == reference[got.len()].1;
        if !tie_at_boundary {
            prop_assert_eq!(&got, &reference[..got.len()].to_vec(), "query {}", &query);
        }
    }

    #[test]
    fn direct_top_n_is_the_exact_reference_prefix(
        query in gen_query(),
        n in 1usize..16,
    ) {
        let reference = reference_list(&query);
        let (hits, _) = db()
            .query_direct_with(&query, Some(n), EvalOptions::default())
            .unwrap();
        let got: Vec<(NodeId, Cost)> = hits.iter().map(|h| (h.root, h.cost)).collect();
        let want = &reference[..reference.len().min(n)];
        prop_assert_eq!(&got, &want.to_vec(), "query {}", &query);
    }
}
