//! Property tests for the multi-surface front-end (random query shapes).
//!
//! Two families of invariants:
//!
//! 1. **Canonical rendering is a fixed point.** Parsing the classic
//!    rendering of any normalized query returns the same query, and
//!    re-rendering is byte-stable — the plan-cache key is well-defined.
//! 2. **Surface translation is invisible.** The canonical JSON-IR and
//!    XPath-lite renderings of a random query compile to plans with the
//!    same fingerprint as the classic form, and return byte-identical
//!    top-k results at 1 and 4 worker threads against a seeded Section
//!    8.1 synthetic collection.
//!
//! The query alphabet reuses the generator's `nameNNN`/`termN` label and
//! word spaces so a healthy fraction of queries actually match data.

use approxql::crates::gen::{DataGenConfig, DataGenerator};
use approxql::crates::plan;
use approxql::{CostModel, Database, EvalOptions, Query, QueryInput, QueryNode, Surface};
use proptest::prelude::*;
use std::sync::OnceLock;

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let mut cfg = DataGenConfig::paper_scale_divided(1000); // 1,000 elements
        cfg.seed = 2002;
        let costs = CostModel::new();
        let tree = DataGenerator::new(cfg).generate_tree(&costs);
        Database::from_tree(tree, costs)
    })
}

fn label_strategy() -> impl Strategy<Value = String> {
    (0usize..8).prop_map(|i| format!("name{i:03}"))
}

fn word_strategy() -> impl Strategy<Value = String> {
    (1usize..10).prop_map(|i| format!("term{i}"))
}

fn expr_strategy() -> impl Strategy<Value = QueryNode> {
    let leaf = prop_oneof![
        word_strategy().prop_map(|word| QueryNode::Text { word }),
        label_strategy().prop_map(|label| QueryNode::Name { label, child: None }),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (label_strategy(), inner.clone()).prop_map(|(label, child)| QueryNode::Name {
                label,
                child: Some(Box::new(child)),
            }),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| QueryNode::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner).prop_map(|(l, r)| QueryNode::Or(Box::new(l), Box::new(r))),
        ]
    })
}

fn query_strategy() -> impl Strategy<Value = Query> {
    (label_strategy(), proptest::option::of(expr_strategy())).prop_map(|(label, child)| {
        Query {
            root: QueryNode::Name {
                label,
                child: child.map(Box::new),
            },
        }
        .normalize()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse ∘ render = id on normalized queries, and render is stable.
    #[test]
    fn classic_rendering_is_a_fixed_point(q in query_strategy()) {
        let rendered = q.to_string();
        let reparsed = QueryInput::new(rendered.as_str())
            .parse()
            .unwrap_or_else(|e| panic!("own rendering failed to parse: {e}\n{rendered}"));
        prop_assert_eq!(&reparsed, &q, "reparse changed the query: {}", rendered);
        prop_assert_eq!(reparsed.to_string(), rendered, "rendering is not stable");
    }

    /// All three canonical renderings reparse (in their own, auto-detected
    /// surface) to the same normalized query.
    #[test]
    fn surface_translations_agree(q in query_strategy()) {
        for surface in Surface::ALL {
            let rendered = surface.render(&q);
            prop_assert_eq!(Surface::detect(&rendered), surface, "{}", &rendered);
            let back = QueryInput::new(rendered.as_str())
                .parse()
                .unwrap_or_else(|e| panic!("{surface} rendering failed to parse: {e}\n{rendered}"));
            prop_assert_eq!(&back, &q, "{} translation changed the query: {}", surface, rendered);
        }
    }

    /// Translations compile to the same plan fingerprint and return
    /// byte-identical top-k results at 1 and 4 threads.
    #[test]
    fn translations_share_plans_and_results(q in query_strategy()) {
        let db = db();
        let classic = q.to_string();
        let (cq, cex) = db.compile(classic.as_str()).unwrap();
        let base_fp = db.plan_for(&cq, &cex).map(|p| plan::fingerprint(&p));
        let baseline = db.query_direct(classic.as_str(), Some(5)).unwrap();
        for surface in Surface::ALL {
            let rendered = surface.render(&q);
            let input = QueryInput::with_surface(&rendered, surface);
            let (sq, sex) = db.compile(input).unwrap();
            prop_assert_eq!(
                db.plan_for(&sq, &sex).map(|p| plan::fingerprint(&p)),
                base_fp,
                "fingerprint diverged for {} form: {}", surface, rendered
            );
            for threads in [1usize, 4] {
                let opts = EvalOptions { threads, ..EvalOptions::default() };
                let (hits, _) = db.query_direct_with(input, Some(5), opts).unwrap();
                prop_assert_eq!(
                    &hits, &baseline,
                    "top-k diverged for {} form at {} threads: {}",
                    surface, threads, rendered
                );
            }
        }
    }
}
