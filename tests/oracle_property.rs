//! Property tests: the list-algebra evaluators must agree with the naive
//! closure-enumeration oracle on random data trees, random queries, and
//! random cost models — and the schema-driven best-n must agree with the
//! direct best-n.
//!
//! The generators use a tiny label alphabet so that approximate matches,
//! deletions, and renamings all fire frequently.

use approxql::crates::core::schema_eval::{best_n_schema, SchemaEvalConfig};
use approxql::crates::core::{direct, EvalOptions};
use approxql::crates::index::LabelIndex;
use approxql::crates::schema::Schema;
use approxql::{
    Cost, CostModel, CostModelBuilder, DataTree, DataTreeBuilder, NodeType, Query,
    ReferenceEvaluator,
};
use proptest::prelude::*;

const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
const WORDS: [&str; 4] = ["w", "x", "y", "z"];

#[derive(Debug, Clone)]
enum GenNode {
    Struct(usize, Vec<GenNode>),
    Word(usize),
}

fn gen_tree_node(depth: u32) -> impl Strategy<Value = GenNode> {
    let leaf = prop_oneof![
        (0..WORDS.len()).prop_map(GenNode::Word),
        (0..NAMES.len()).prop_map(|n| GenNode::Struct(n, vec![])),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        (0..NAMES.len(), proptest::collection::vec(inner, 0..3))
            .prop_map(|(n, children)| GenNode::Struct(n, children))
    })
}

fn gen_data() -> impl Strategy<Value = Vec<GenNode>> {
    proptest::collection::vec(gen_tree_node(3), 1..4)
}

fn build_tree(docs: &[GenNode], costs: &CostModel) -> DataTree {
    fn emit(b: &mut DataTreeBuilder, n: &GenNode) {
        match n {
            GenNode::Word(w) => {
                b.add_word(WORDS[*w]);
            }
            GenNode::Struct(name, children) => {
                b.begin_struct(NAMES[*name]);
                for c in children {
                    emit(b, c);
                }
                b.end();
            }
        }
    }
    let mut b = DataTreeBuilder::new();
    for d in docs {
        // Only struct nodes can be document roots.
        match d {
            GenNode::Word(w) => {
                b.begin_struct("doc");
                b.add_word(WORDS[*w]);
                b.end();
            }
            other => emit(&mut b, other),
        }
    }
    b.build(costs)
}

#[derive(Debug, Clone)]
enum GenQuery {
    Name(usize, Vec<GenQuery>),
    Word(usize),
    And(Box<GenQuery>, Box<GenQuery>),
    Or(Box<GenQuery>, Box<GenQuery>),
}

fn gen_query_expr(depth: u32) -> impl Strategy<Value = GenQuery> {
    let leaf = prop_oneof![
        (0..WORDS.len()).prop_map(GenQuery::Word),
        (0..NAMES.len()).prop_map(|n| GenQuery::Name(n, vec![])),
    ];
    leaf.prop_recursive(depth, 12, 2, |inner| {
        prop_oneof![
            (
                0..NAMES.len(),
                proptest::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(n, cs)| GenQuery::Name(n, cs)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| GenQuery::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner).prop_map(|(l, r)| GenQuery::Or(Box::new(l), Box::new(r))),
        ]
    })
}

fn gen_query() -> impl Strategy<Value = (usize, Vec<GenQuery>)> {
    (
        0..NAMES.len(),
        proptest::collection::vec(gen_query_expr(2), 0..3),
    )
}

fn render_query(root: usize, children: &[GenQuery]) -> String {
    fn render(q: &GenQuery) -> String {
        match q {
            GenQuery::Word(w) => format!("\"{}\"", WORDS[*w]),
            GenQuery::Name(n, cs) if cs.is_empty() => NAMES[*n].to_owned(),
            GenQuery::Name(n, cs) => {
                let inner: Vec<String> = cs.iter().map(render).collect();
                format!("{}[{}]", NAMES[*n], inner.join(" and "))
            }
            GenQuery::And(l, r) => format!("({} and {})", render(l), render(r)),
            GenQuery::Or(l, r) => format!("({} or {})", render(l), render(r)),
        }
    }
    if children.is_empty() {
        NAMES[root].to_owned()
    } else {
        let inner: Vec<String> = children.iter().map(render).collect();
        format!("{}[{}]", NAMES[root], inner.join(" and "))
    }
}

/// A random cost model over the tiny alphabet: a few deletions and
/// renamings with costs 1..6.
fn gen_costs() -> impl Strategy<Value = Vec<(u8, usize, usize, u64)>> {
    proptest::collection::vec(
        (
            0u8..3, // 0 = delete name, 1 = delete word, 2 = rename
            0usize..NAMES.len().max(WORDS.len()),
            0usize..NAMES.len().max(WORDS.len()),
            1u64..6,
        ),
        0..6,
    )
}

fn build_costs(spec: &[(u8, usize, usize, u64)]) -> CostModel {
    let mut b: CostModelBuilder = CostModel::builder().insert_default(1);
    for &(kind, x, y, c) in spec {
        match kind {
            0 => b = b.delete(NodeType::Struct, NAMES[x % NAMES.len()], Cost::finite(c)),
            1 => b = b.delete(NodeType::Text, WORDS[x % WORDS.len()], Cost::finite(c)),
            _ => {
                let (from, to) = (NAMES[x % NAMES.len()], NAMES[y % NAMES.len()]);
                if from != to {
                    b = b.rename(NodeType::Struct, from, to, Cost::finite(c));
                }
            }
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `primary` (direct) computes exactly the oracle's root–cost pairs,
    /// with and without the leaf rule, at several thread counts.
    #[test]
    fn direct_equals_oracle(
        docs in gen_data(),
        (qroot, qchildren) in gen_query(),
        cost_spec in gen_costs(),
    ) {
        let costs = build_costs(&cost_spec);
        let tree = build_tree(&docs, &costs);
        let query_str = render_query(qroot, &qchildren);
        let query: Query = approxql::parse_query(&query_str).unwrap();
        let expanded = approxql::ExpandedQuery::build(&query, &costs);
        let index = LabelIndex::build(&tree);
        let oracle = ReferenceEvaluator::new(&tree, &costs);

        for enforce in [true, false] {
            let want = oracle.best_n(&query, None, enforce);
            for threads in [1, 4] {
                let opts = EvalOptions {
                    enforce_leaf_match: enforce,
                    threads,
                };
                let (got, _) = direct::best_n(&expanded, &index, tree.interner(), None, opts);
                prop_assert_eq!(
                    &got, &want,
                    "direct(threads={}, leaf={}) disagrees with oracle on {} over {:?}",
                    threads, enforce, query_str, docs
                );
            }
        }
    }

    /// The schema-driven best-n returns the same cost sequence as the
    /// direct best-n, and identical root sets strictly below the n-th cost
    /// (tie order at the cut may differ).
    #[test]
    fn schema_equals_direct(
        docs in gen_data(),
        (qroot, qchildren) in gen_query(),
        cost_spec in gen_costs(),
        n in 1usize..8,
    ) {
        let costs = build_costs(&cost_spec);
        let tree = build_tree(&docs, &costs);
        let query_str = render_query(qroot, &qchildren);
        let query: Query = approxql::parse_query(&query_str).unwrap();
        let expanded = approxql::ExpandedQuery::build(&query, &costs);
        let index = LabelIndex::build(&tree);
        let schema = Schema::build(&tree, &costs);

        let (direct_all, _) = direct::best_n(
            &expanded, &index, tree.interner(), None, EvalOptions::default());
        let (schema_n, _) = best_n_schema(
            &expanded, &schema, tree.interner(), n,
            EvalOptions::default(), SchemaEvalConfig::default());

        let want: Vec<_> = direct_all.iter().take(n).collect();
        prop_assert_eq!(schema_n.len(), want.len(), "result count for {}", query_str);
        let want_costs: Vec<Cost> = want.iter().map(|&&(_, c)| c).collect();
        let got_costs: Vec<Cost> = schema_n.iter().map(|&(_, c)| c).collect();
        prop_assert_eq!(&got_costs, &want_costs, "cost sequence for {}", query_str);
        if let Some(&last) = want_costs.last() {
            let strict_want: std::collections::BTreeSet<_> =
                want.iter().filter(|&&&(_, c)| c < last).collect();
            for (root, cost) in schema_n.iter().filter(|&&(_, c)| c < last) {
                prop_assert!(
                    strict_want.contains(&&(*root, *cost)),
                    "root {} at {} not in direct results for {}", root, cost, query_str
                );
            }
        }
    }

    /// The incremental driver returns the same results regardless of its
    /// starting k and growth (prefix-stability of the second-level list).
    #[test]
    fn schema_driver_is_config_independent(
        docs in gen_data(),
        (qroot, qchildren) in gen_query(),
        cost_spec in gen_costs(),
    ) {
        let costs = build_costs(&cost_spec);
        let tree = build_tree(&docs, &costs);
        let query_str = render_query(qroot, &qchildren);
        let query: Query = approxql::parse_query(&query_str).unwrap();
        let expanded = approxql::ExpandedQuery::build(&query, &costs);
        let schema = Schema::build(&tree, &costs);

        let run = |cfg: SchemaEvalConfig| {
            best_n_schema(&expanded, &schema, tree.interner(), 5,
                EvalOptions::default(), cfg).0
        };
        let a = run(SchemaEvalConfig::default());
        let b = run(SchemaEvalConfig { initial_k: Some(1), delta: Some(1), ..Default::default() });
        let c = run(SchemaEvalConfig { initial_k: Some(3), delta: None, ..Default::default() });
        let costs_of = |v: &[(u32, Cost)]| v.iter().map(|&(_, c)| c).collect::<Vec<_>>();
        prop_assert_eq!(costs_of(&a), costs_of(&b), "k growth changed costs for {}", query_str);
        prop_assert_eq!(costs_of(&a), costs_of(&c), "k growth changed costs for {}", query_str);
    }

    /// Metrics invariants: counters are monotone (every later snapshot
    /// dominates every earlier one), the diff of equal snapshots is zero,
    /// and diffs over work regions obey `diff = later - earlier` exactly.
    #[test]
    fn metrics_snapshots_are_monotone_and_diffable(
        docs in gen_data(),
        (qroot, qchildren) in gen_query(),
        cost_spec in gen_costs(),
    ) {
        let costs = build_costs(&cost_spec);
        let tree = build_tree(&docs, &costs);
        let query_str = render_query(qroot, &qchildren);
        let query: Query = approxql::parse_query(&query_str).unwrap();
        let expanded = approxql::ExpandedQuery::build(&query, &costs);
        let index = LabelIndex::build(&tree);
        let schema = Schema::build(&tree, &costs);

        // Equal snapshots diff to zero (no work in between).
        let s0 = approxql::metrics_snapshot();
        let s0b = approxql::metrics_snapshot();
        prop_assert!(s0b.diff(&s0).is_zero(), "idle region recorded operations");

        // Snapshots taken across evaluation rounds are monotone.
        let mut snaps = vec![s0];
        for _ in 0..3 {
            let _ = direct::best_n(&expanded, &index, tree.interner(), None, EvalOptions::default());
            snaps.push(approxql::metrics_snapshot());
            let _ = best_n_schema(&expanded, &schema, tree.interner(), 3,
                EvalOptions::default(), SchemaEvalConfig::default());
            snaps.push(approxql::metrics_snapshot());
        }
        for w in snaps.windows(2) {
            prop_assert!(w[1].dominates(&w[0]), "counters regressed for {}", query_str);
        }
        // A snapshot diffed against itself is zero even after work.
        let last = snaps.last().unwrap();
        prop_assert!(last.diff(last).is_zero());
        // diff is exact subtraction: first + (last - first) = last, checked
        // counter by counter.
        let delta = last.diff(&snaps[0]);
        for (m, v) in last.counters() {
            prop_assert_eq!(v, snaps[0].get(m) + delta.get(m), "counter {} drifted", m.name());
        }
    }

    /// Whenever the two evaluators agree on a non-empty result, both must
    /// have touched the label index: ≥1 fetch on each side of the
    /// comparison (results cannot appear out of thin air).
    #[test]
    fn non_empty_results_imply_index_fetches(
        docs in gen_data(),
        (qroot, qchildren) in gen_query(),
        cost_spec in gen_costs(),
    ) {
        let costs = build_costs(&cost_spec);
        let tree = build_tree(&docs, &costs);
        let query_str = render_query(qroot, &qchildren);
        let query: Query = approxql::parse_query(&query_str).unwrap();
        let expanded = approxql::ExpandedQuery::build(&query, &costs);
        let index = LabelIndex::build(&tree);
        let schema = Schema::build(&tree, &costs);

        let before = approxql::metrics_snapshot();
        let (direct_hits, _) = direct::best_n(
            &expanded, &index, tree.interner(), None, EvalOptions::default());
        let direct_diff = approxql::metrics_snapshot().diff(&before);

        let before = approxql::metrics_snapshot();
        let (schema_hits, _) = best_n_schema(
            &expanded, &schema, tree.interner(), direct_hits.len().max(1),
            EvalOptions::default(), SchemaEvalConfig::default());
        let schema_diff = approxql::metrics_snapshot().diff(&before);

        use approxql::Metric;
        if !direct_hits.is_empty() {
            prop_assert!(direct_diff.get(Metric::EvalDirectFetches) >= 1,
                "direct produced {} hits with no fetch for {}", direct_hits.len(), query_str);
            prop_assert!(direct_diff.get(Metric::ListEntriesProduced) >= direct_hits.len() as u64,
                "fewer entries than results for {}", query_str);
        }
        if !schema_hits.is_empty() {
            prop_assert!(schema_diff.get(Metric::IndexLabelFetches) >= 1,
                "schema produced {} hits with no fetch for {}", schema_hits.len(), query_str);
            prop_assert!(schema_diff.get(Metric::EvalSecondLevelQueries) >= 1,
                "schema hits without second-level queries for {}", query_str);
        }
    }

    /// The incremental driver's round counter matches its reported stats,
    /// and counter diffs across rounds are monotone in k: re-running with
    /// a larger fixed k never does *less* top-k work.
    #[test]
    fn schema_round_counters_match_stats(
        docs in gen_data(),
        (qroot, qchildren) in gen_query(),
        cost_spec in gen_costs(),
    ) {
        let costs = build_costs(&cost_spec);
        let tree = build_tree(&docs, &costs);
        let query_str = render_query(qroot, &qchildren);
        let query: Query = approxql::parse_query(&query_str).unwrap();
        let expanded = approxql::ExpandedQuery::build(&query, &costs);
        let schema = Schema::build(&tree, &costs);

        use approxql::Metric;
        let before = approxql::metrics_snapshot();
        let (_, stats) = best_n_schema(
            &expanded, &schema, tree.interner(), 4,
            EvalOptions::default(),
            SchemaEvalConfig { initial_k: Some(1), delta: Some(2), ..Default::default() });
        let diff = approxql::metrics_snapshot().diff(&before);
        prop_assert_eq!(diff.get(Metric::EvalSchemaRounds), stats.rounds as u64,
            "round counter disagrees with EvalStats for {}", query_str);
        prop_assert_eq!(diff.get(Metric::EvalSecondLevelQueries),
            stats.second_level_queries as u64,
            "second-level counter disagrees with EvalStats for {}", query_str);
        prop_assert_eq!(diff.get(Metric::EvalSecondaryRows), stats.secondary_rows as u64,
            "secondary-row counter disagrees with EvalStats for {}", query_str);
        prop_assert_eq!(diff.get(Metric::EvalSchemaRuns), stats.rounds as u64,
            "every round is exactly one adapted-primary run for {}", query_str);
    }
}
