//! Property tests for the block-compressed posting codec (DESIGN.md §14):
//! arbitrary preorder-sorted posting lists must encode → serialize →
//! deserialize → decode byte-identically, and the skip cursor's `seek`
//! must agree with a linear-scan oracle.

use approxql::crates::index::codec::{BlockCursor, BlockList, InstanceBlocks};
use approxql::crates::index::{InstancePosting, Posting};
use approxql::Cost;
use proptest::prelude::*;

/// A cost that is infinite often enough to exercise the 0-byte encoding.
fn gen_cost() -> impl Strategy<Value = Cost> {
    prop_oneof![
        (0u64..100_000).prop_map(Cost::finite),
        (0u64..100_000).prop_map(Cost::finite),
        (0u64..1).prop_map(|_| Cost::INFINITY),
    ]
}

/// Strictly pre-sorted posting lists with irregular gaps, spanning zero
/// to several compression frames.
fn gen_postings() -> impl Strategy<Value = Vec<Posting>> {
    proptest::collection::vec((1u32..5_000, 0u32..10_000, gen_cost(), gen_cost()), 0..400).prop_map(
        |raw| {
            let mut pre = 0u32;
            raw.into_iter()
                .map(|(gap, span, pathcost, inscost)| {
                    pre += gap;
                    Posting {
                        pre,
                        bound: pre + span,
                        pathcost,
                        inscost,
                    }
                })
                .collect()
        },
    )
}

/// Strictly pre-sorted instance lists.
fn gen_instances() -> impl Strategy<Value = Vec<InstancePosting>> {
    proptest::collection::vec((1u32..5_000, 0u32..10_000), 0..400).prop_map(|raw| {
        let mut pre = 0u32;
        raw.into_iter()
            .map(|(gap, span)| {
                pre += gap;
                InstancePosting {
                    pre,
                    bound: pre + span,
                }
            })
            .collect()
    })
}

/// One step of a randomized mutation sequence: a batch append (gaps are
/// relative to the list's running maximum, keeping preorders strictly
/// increasing) or a range tombstone.
#[derive(Clone, Debug)]
enum MutOp {
    Append(Vec<(u32, u32, Cost, Cost)>),
    Remove(u32, u32),
}

fn gen_mut_ops() -> impl Strategy<Value = Vec<MutOp>> {
    proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec((1u32..500, 0u32..1_000, gen_cost(), gen_cost()), 1..60)
                .prop_map(MutOp::Append),
            (0u32..600_000, 0u32..50_000)
                .prop_map(|(lo, span)| MutOp::Remove(lo, lo.saturating_add(span))),
        ],
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Incremental maintenance (PR 8): after any interleaving of batch
    /// appends and range removals, the block list stays integrity-clean,
    /// byte-identical to a batch build over a `Vec` model (the canonical
    /// form `check_integrity` demands), and its skip cursor still agrees
    /// with a linear scan of the model.
    #[test]
    fn block_list_mutations_match_vec_model(
        initial in gen_postings(),
        ops in gen_mut_ops(),
        raw_targets in proptest::collection::vec(0u32..2_000_000, 1..20),
    ) {
        let mut model = initial.clone();
        let mut blocks = BlockList::from_postings(&initial);
        for op in ops {
            match op {
                MutOp::Append(raw) => {
                    let mut pre = model.last().map(|p| p.pre).unwrap_or(0);
                    let batch: Vec<Posting> = raw
                        .into_iter()
                        .map(|(gap, span, pathcost, inscost)| {
                            pre += gap;
                            Posting { pre, bound: pre + span, pathcost, inscost }
                        })
                        .collect();
                    blocks.append_postings(&batch);
                    model.extend(batch);
                }
                MutOp::Remove(lo, hi) => {
                    let removed = blocks.remove_range(lo, hi);
                    let before = model.len();
                    model.retain(|p| p.pre < lo || p.pre > hi);
                    prop_assert_eq!(removed, before - model.len());
                }
            }
            prop_assert_eq!(blocks.entry_count(), model.len());
            prop_assert!(blocks.check_integrity().is_ok(), "integrity lost after mutation");
            prop_assert_eq!(blocks.to_bytes(), BlockList::from_postings(&model).to_bytes());
        }
        prop_assert_eq!(blocks.decode_all(), model.clone());
        let mut targets = raw_targets;
        targets.sort_unstable();
        let mut cursor = BlockCursor::new(&blocks);
        for t in targets {
            let want = model.iter().find(|p| p.pre >= t).copied();
            prop_assert_eq!(cursor.seek(t), want, "seek({}) diverged after mutations", t);
        }
    }

    /// The same invariant for instance frames: `push`/`remove_range`
    /// sequences stay integrity-clean and decode to the `Vec` model.
    #[test]
    fn instance_blocks_mutations_match_vec_model(
        instances in gen_instances(),
        removes in proptest::collection::vec((0u32..600_000, 0u32..50_000), 1..8),
    ) {
        let mut blocks = InstanceBlocks::default();
        let mut model: Vec<InstancePosting> = Vec::new();
        // Interleave pushes with removals of already-pushed ranges.
        let chunk = instances.len() / removes.len().max(1) + 1;
        for (i, (lo, span)) in removes.iter().enumerate() {
            for &p in instances.iter().skip(i * chunk).take(chunk) {
                blocks.push(p);
                model.push(p);
            }
            let (lo, hi) = (*lo, lo.saturating_add(*span));
            let removed = blocks.remove_range(lo, hi);
            let before = model.len();
            model.retain(|p| p.pre < lo || p.pre > hi);
            prop_assert_eq!(removed, before - model.len());
            prop_assert!(blocks.check_integrity().is_ok(), "integrity lost after remove");
            prop_assert_eq!(blocks.decode_all(), model.clone());
        }
    }

    /// encode → to_bytes → from_bytes → decode is the identity, the
    /// integrity check accepts every well-formed list, and `byte_len`
    /// matches the serialized size.
    #[test]
    fn block_list_roundtrips(postings in gen_postings()) {
        let blocks = BlockList::from_postings(&postings);
        prop_assert_eq!(blocks.entry_count(), postings.len());
        prop_assert_eq!(blocks.decode_all(), postings.clone());
        let bytes = blocks.to_bytes();
        prop_assert_eq!(bytes.len(), blocks.byte_len());
        let loaded = BlockList::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&loaded, &blocks);
        loaded.check_integrity().unwrap();
        prop_assert_eq!(loaded.decode_all(), postings);
    }

    /// `seek(pre)` lands on exactly the first posting with `pre >=
    /// target` — the same answer as a linear scan of the decoded list —
    /// for any non-decreasing target sequence.
    #[test]
    fn block_cursor_seek_agrees_with_linear_scan(
        postings in gen_postings(),
        raw_targets in proptest::collection::vec(0u32..2_000_000, 1..40),
    ) {
        let blocks = BlockList::from_postings(&postings);
        let mut targets = raw_targets;
        targets.sort_unstable();
        let mut cursor = BlockCursor::new(&blocks);
        for t in targets {
            let want = postings.iter().find(|p| p.pre >= t).copied();
            prop_assert_eq!(cursor.seek(t), want, "seek({}) diverged", t);
        }
    }

    /// Draining the cursor yields the full decoded list.
    #[test]
    fn block_cursor_drains_everything(postings in gen_postings()) {
        let blocks = BlockList::from_postings(&postings);
        let drained: Vec<_> = BlockCursor::new(&blocks).collect();
        prop_assert_eq!(drained, postings);
    }

    /// The incremental (`push`) and batch (`from_instances`) builders
    /// agree, and instance frames round-trip through bytes.
    #[test]
    fn instance_blocks_roundtrip(instances in gen_instances()) {
        let batch = InstanceBlocks::from_instances(&instances);
        let mut incremental = InstanceBlocks::default();
        for &i in &instances {
            incremental.push(i);
        }
        prop_assert_eq!(incremental.decode_all(), instances.clone());
        prop_assert_eq!(batch.decode_all(), instances.clone());
        let bytes = batch.to_bytes();
        prop_assert_eq!(bytes.len(), batch.byte_len());
        let loaded = InstanceBlocks::from_bytes(&bytes).unwrap();
        loaded.check_integrity().unwrap();
        prop_assert_eq!(loaded.decode_all(), instances);
    }
}
