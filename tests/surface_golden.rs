//! Plan-identity golden suite for the three query surfaces.
//!
//! The multi-surface front-end promises that the surface a query is
//! written in is *invisible* past the parser: classic approXQL, the JSON
//! query-IR, and XPath-lite forms of the same query must compile to the
//! **byte-identical** rendered plan, carry the same plan fingerprint,
//! share one plan-cache entry (one compile, cross-surface cache hits),
//! and return byte-identical results at every thread count.
//!
//! The queries are the committed figure-2 and figure-7 evaluation
//! workloads; their JSON-IR and XPath-lite spellings are derived with the
//! canonical emitters (`approxql translate` uses the same code), so this
//! suite also pins the emitters against the parsers.

use approxql::crates::plan;
use approxql::{Database, EvalOptions, Metric, QueryInput, Surface};
use std::sync::OnceLock;

const CATALOG: &str = include_str!("../datasets/catalog.xml");
const FIGURE7_CORPUS: &str = include_str!("../datasets/figure7_corpus.xml");

/// Every query from `datasets/figure2.json`.
const FIGURE2_QUERIES: &[&str] = &[
    r#"cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]]"#,
    r#"cd[title["piano"]]"#,
    r#"cd[title["piano" and "concerto"]]"#,
    r#"cd[composer["brahms"]]"#,
    r#"cd[title]"#,
];

/// Every query from `datasets/figure7_ren0.json` (the ren5/ren10 variants
/// reuse the same query texts with different cost tables, which do not
/// affect surface translation).
const FIGURE7_QUERIES: &[&str] = &[
    r#"name034[name096["term112" and ("term18947" or "term348")]]"#,
    r#"name034[name012["term8290" and ("term482" or "term3")]]"#,
    r#"name034[name034["term92" and ("term555" or "term588")]]"#,
    r#"name034[name034["term3" and ("term1" or "term7309")]]"#,
    r#"name034[name000["term85" and ("term383" or "term65930")]]"#,
];

/// The three spellings of a classic query: (classic, json-ir, xpath-lite).
fn spellings(classic: &str) -> [(Surface, String); 3] {
    let q = QueryInput::new(classic).parse().unwrap();
    [
        (Surface::Classic, classic.to_string()),
        (Surface::Json, q.to_json_ir()),
        (Surface::Xpath, q.to_xpath()),
    ]
}

fn catalog_db() -> Database {
    Database::from_xml_str(CATALOG, approxql::tables::paper_section6_costs()).unwrap()
}

fn figure7_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| Database::from_xml_str(FIGURE7_CORPUS, approxql::CostModel::new()).unwrap())
}

/// Each workload query compiles — through any surface — to one shared
/// plan-cache entry with equal fingerprints and a byte-identical
/// `--explain` rendering (operator tree *and* executed entry counts).
#[test]
fn surfaces_compile_to_byte_identical_plans() {
    let opts = EvalOptions {
        threads: 1,
        ..EvalOptions::default()
    };
    // Fresh databases so the plan caches start cold and the pinned
    // miss/hit counts below are exact.
    let dbs = [
        (catalog_db(), FIGURE2_QUERIES),
        (
            Database::from_xml_str(FIGURE7_CORPUS, approxql::CostModel::new()).unwrap(),
            FIGURE7_QUERIES,
        ),
    ];
    for (db, queries) in &dbs {
        for classic in *queries {
            let before = approxql::metrics_snapshot();
            let mut explains = Vec::new();
            let mut fingerprints = Vec::new();
            for (surface, text) in spellings(classic) {
                let input = QueryInput::with_surface(&text, surface);
                explains.push(db.explain_direct(input, Some(10), opts).unwrap());
                let (q, ex) = db.compile(input).unwrap();
                let plan = db.plan_for(&q, &ex).unwrap();
                fingerprints.push(plan::fingerprint(&plan));
            }
            let delta = approxql::metrics_snapshot().diff(&before);
            assert_eq!(
                explains[0], explains[1],
                "classic vs JSON-IR explain differs for {classic}"
            );
            assert_eq!(
                explains[0], explains[2],
                "classic vs XPath-lite explain differs for {classic}"
            );
            assert_eq!(fingerprints[0], fingerprints[1], "{classic}");
            assert_eq!(fingerprints[0], fingerprints[2], "{classic}");
            // One compile for the first surface; everything after —
            // including the five follow-up `plan_for` lookups — hits the
            // shared cache entry.
            assert_eq!(delta.get(Metric::PlanCompile), 1, "{classic}");
            assert_eq!(delta.get(Metric::PlanCacheMisses), 1, "{classic}");
            assert!(
                delta.get(Metric::PlanCacheHits) >= 2,
                "cross-surface cache hits missing for {classic}: {}",
                delta.get(Metric::PlanCacheHits)
            );
        }
    }
}

/// Results are byte-identical across surfaces and thread counts: the
/// surface chooses a parser, nothing downstream.
#[test]
fn surface_results_are_identical_at_every_thread_count() {
    let dbs: [(&Database, &[&str]); 2] = [
        (&catalog_db(), FIGURE2_QUERIES),
        (figure7_db(), FIGURE7_QUERIES),
    ];
    for (db, queries) in dbs {
        for classic in queries {
            let baseline = db.query_direct(*classic, Some(10)).unwrap();
            for (surface, text) in spellings(classic) {
                for threads in [1, 2, 4] {
                    let opts = EvalOptions {
                        threads,
                        ..EvalOptions::default()
                    };
                    let (hits, _) = db
                        .query_direct_with(QueryInput::with_surface(&text, surface), Some(10), opts)
                        .unwrap();
                    assert_eq!(
                        hits, baseline,
                        "{classic} via {surface} at {threads} threads"
                    );
                }
            }
        }
    }
}

/// The JSON explain document is surface-independent too, and carries the
/// same fingerprint that `plan::fingerprint` computes.
#[test]
fn explain_json_is_surface_independent() {
    let db = catalog_db();
    let opts = EvalOptions {
        threads: 1,
        ..EvalOptions::default()
    };
    for classic in FIGURE2_QUERIES {
        let docs: Vec<String> = spellings(classic)
            .into_iter()
            .map(|(surface, text)| {
                db.explain_direct_json(QueryInput::with_surface(&text, surface), Some(10), opts)
                    .unwrap()
            })
            .collect();
        assert_eq!(docs[0], docs[1], "{classic}");
        assert_eq!(docs[0], docs[2], "{classic}");
        let parsed = approxql::crates::query::json::parse(&docs[0]).unwrap();
        let rendered_fp = parsed
            .get("fingerprint")
            .and_then(|v| v.as_str())
            .unwrap()
            .to_string();
        let (q, ex) = db.compile(*classic).unwrap();
        let plan = db.plan_for(&q, &ex).unwrap();
        assert_eq!(rendered_fp, format!("{:#018x}", plan::fingerprint(&plan)));
    }
}
