//! The paper's running example (Figures 1–3, Section 6 cost table) as an
//! executable specification: the catalog data tree, its encoding, the
//! indexes, and the exact root–cost pairs of the example queries — checked
//! against all three evaluators (direct, schema-driven, naive oracle).

use approxql::crates::core::schema_eval::SchemaEvalConfig;
use approxql::crates::core::EvalOptions;
use approxql::crates::index::LabelIndex;
use approxql::crates::schema::Schema;
use approxql::{tables, Cost, Database, NodeId, NodeType, ReferenceEvaluator};

/// The catalog of Figure 1(b)/3(a): a CD with title and composer, and a
/// second CD whose track titles carry the music terms.
const CATALOG: &str = r#"<catalog>
    <cd>
        <title>Piano Concerto</title>
        <composer>Rachmaninov</composer>
    </cd>
    <cd>
        <title>Kinderszenen</title>
        <tracks>
            <track><title>Vivace piano</title></track>
        </tracks>
    </cd>
</catalog>"#;

fn db() -> Database {
    Database::from_xml_str(CATALOG, tables::paper_section6_costs()).unwrap()
}

/// Node ids of the loaded catalog (preorder; 0 is the virtual root, 1 the
/// `catalog` element).
const CD1: u32 = 2;
const CD2: u32 = 8;

#[test]
fn tree_layout_matches_figure() {
    let db = db();
    let t = db.tree();
    assert_eq!(t.label(NodeId(1)), "catalog");
    assert_eq!(t.label(NodeId(CD1)), "cd");
    assert_eq!(t.label(NodeId(CD2)), "cd");
    // cd1: title (3) -> piano (4), concerto (5); composer (6) -> rachmaninov (7)
    assert_eq!(t.label(NodeId(4)), "piano");
    assert_eq!(t.label(NodeId(7)), "rachmaninov");
    assert_eq!(t.node_type(NodeId(7)), NodeType::Text);
    // cd2: title (9) -> kinderszenen (10); tracks (11) -> track (12) ->
    // title (13) -> vivace (14), piano (15)
    assert_eq!(t.label(NodeId(11)), "tracks");
    assert_eq!(t.label(NodeId(14)), "vivace");
}

#[test]
fn encoding_satisfies_section_6_2() {
    let db = db();
    let t = db.tree();
    // The ancestor test of Section 6.2 on the Figure 3 example pair:
    // tracks is an ancestor of "vivace".
    let tracks = NodeId(11);
    let vivace = NodeId(14);
    assert!(t.is_ancestor(tracks, vivace));
    assert!(!t.is_ancestor(vivace, tracks));
    // distance(tracks, "vivace") = inscost(track) + inscost(title):
    // track is unlisted (1), title costs 3 in the Section 6 table -> 4.
    // (The same "9 - 3 - 2 = 4" computation as the paper's example,
    // modulo the figure's own cost annotations.)
    assert_eq!(t.distance(tracks, vivace), Cost::finite(4));
    assert_eq!(
        t.distance(tracks, vivace),
        t.inscost(NodeId(12)) + t.inscost(NodeId(13))
    );
    // pathcost telescopes along every root path.
    for n in t.nodes().skip(1) {
        let p = t.parent(n).unwrap();
        assert_eq!(t.pathcost(n), t.pathcost(p) + t.inscost(p));
    }
    // bound(u) is the largest preorder number in u's subtree.
    for n in t.nodes() {
        let last = t.descendants_inclusive(n).last().unwrap();
        assert_eq!(t.bound(n), last.0);
    }
}

#[test]
fn label_indexes_match_figure_3() {
    let db = db();
    let t = db.tree();
    let idx = LabelIndex::build(t);
    let title = t.lookup_label("title").unwrap();
    let piano = t.lookup_label("piano").unwrap();
    // Three title elements, two piano words — preorder sorted.
    let titles: Vec<u32> = idx
        .fetch(NodeType::Struct, title)
        .iter()
        .map(|p| p.pre)
        .collect();
    assert_eq!(titles, vec![3, 9, 13]);
    let pianos: Vec<u32> = idx
        .fetch(NodeType::Text, piano)
        .iter()
        .map(|p| p.pre)
        .collect();
    assert_eq!(pianos, vec![4, 15]);
}

#[test]
fn schema_of_the_catalog() {
    let db = db();
    let schema = Schema::build(db.tree(), db.costs());
    // root, catalog, cd, title, text, composer, text, tracks, track,
    // title, text = 11 schema nodes.
    assert_eq!(schema.tree().len(), 11);
    // Both cds share one class.
    assert_eq!(schema.class_of(NodeId(CD1)), schema.class_of(NodeId(CD2)));
    // The two title contexts (cd/title vs cd/tracks/track/title) are
    // distinct classes.
    assert_ne!(schema.class_of(NodeId(3)), schema.class_of(NodeId(13)));
}

/// Expected root–cost pairs for the example queries, from hand evaluation
/// of the Section 6 cost table (see `crates/core/src/direct.rs` tests for
/// the per-query derivations).
fn expected() -> Vec<(&'static str, Vec<(u32, u64)>)> {
    vec![
        (
            r#"cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#,
            vec![(CD1, 0)],
        ),
        (r#"cd[title["piano"]]"#, vec![(CD1, 0), (CD2, 2)]),
        (
            r#"cd[title["piano" and "concerto"]]"#,
            vec![(CD1, 0), (CD2, 8)],
        ),
        (
            r#"cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]]"#,
            vec![(CD1, 3)],
        ),
        (
            r#"cd[title["concerto" or "kinderszenen"]]"#,
            vec![(CD1, 0), (CD2, 0)],
        ),
        ("cd[tracks]", vec![(CD2, 0)]),
        (r#"mc[title["piano"]]"#, vec![]), // mc is not renamable to cd
    ]
}

#[test]
fn direct_evaluation_matches_hand_computation() {
    let db = db();
    for (query, want) in expected() {
        let hits = db.query_direct(query, None).unwrap();
        let got: Vec<(u32, u64)> = hits
            .iter()
            .map(|h| (h.root.0, h.cost.value().unwrap()))
            .collect();
        assert_eq!(got, want, "direct mismatch for {query}");
    }
}

#[test]
fn schema_evaluation_matches_hand_computation() {
    let db = db();
    for (query, want) in expected() {
        let hits = db.query_schema(query, want.len().max(1)).unwrap();
        let got: Vec<(u32, u64)> = hits
            .iter()
            .map(|h| (h.root.0, h.cost.value().unwrap()))
            .collect();
        assert_eq!(got, want, "schema mismatch for {query}");
    }
}

#[test]
fn oracle_matches_hand_computation() {
    let db = db();
    let costs = tables::paper_section6_costs();
    let oracle = ReferenceEvaluator::new(db.tree(), &costs);
    for (query, want) in expected() {
        let q = approxql::parse_query(query).unwrap();
        let got: Vec<(u32, u64)> = oracle
            .best_n(&q, None, true)
            .into_iter()
            .map(|(pre, c)| (pre, c.value().unwrap()))
            .collect();
        assert_eq!(got, want, "oracle mismatch for {query}");
    }
}

#[test]
fn separated_representation_of_section_3() {
    // The 2^2 separation example of Section 3.
    let q = approxql::parse_query(
        r#"cd[title["piano" and ("concerto" or "sonata")] and (composer["rachmaninov"] or performer["ashkenazy"])]"#,
    )
    .unwrap();
    assert_eq!(q.separate().len(), 4);
}

#[test]
fn results_materialize_as_xml() {
    let db = db();
    let hits = db.query_direct(r#"cd[title["piano"]]"#, None).unwrap();
    let el = db.result_element(hits[1]).unwrap();
    assert_eq!(el.name, "cd");
    // The second CD's subtree contains the track structure.
    assert!(el.find_child("tracks").is_some());
    let xml = approxql::Document { root: el }.to_xml_string();
    assert!(xml.contains("<track>"));
}

#[test]
fn incremental_schema_driver_reports_rounds() {
    let db = db();
    let (hits, stats) = db
        .query_schema_with(
            r#"cd[title["piano"]]"#,
            2,
            EvalOptions::default(),
            SchemaEvalConfig {
                initial_k: Some(1),
                delta: Some(1),
                ..SchemaEvalConfig::default()
            },
        )
        .unwrap();
    assert_eq!(hits.len(), 2);
    assert!(stats.rounds >= 2);
    assert!(stats.second_level_queries >= 2);
}
