//! Determinism of the parallel executor: evaluating the same query at 2,
//! 4, and 8 worker threads must return byte-identical (pre, cost) result
//! lists *and* identical merged work counters as the sequential run, for
//! both evaluators.
//!
//! This pins the two invariants the executor is built around:
//!
//! 1. results are merged in a deterministic order regardless of which
//!    worker finished first, and
//! 2. worker-local metric deltas are retracted on the worker and absorbed
//!    into the calling thread exactly when the sequential driver would
//!    have done that work — so `--stats` output is thread-count-invariant.
//!
//! The collection is a seeded Section 8.1 synthetic collection, built once
//! and shared across cases (evaluation is read-only).

use approxql::crates::core::schema_eval::SchemaEvalConfig;
use approxql::crates::core::EvalOptions;
use approxql::crates::gen::{DataGenConfig, DataGenerator};
use approxql::{CostModel, Database, Metric};
use proptest::prelude::*;
use std::sync::OnceLock;

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let mut cfg = DataGenConfig::paper_scale_divided(1000); // 1,000 elements
        cfg.seed = 2002;
        let costs = CostModel::new();
        let tree = DataGenerator::new(cfg).generate_tree(&costs);
        Database::from_tree(tree, costs)
    })
}

/// Random tree-pattern queries over the generated label/word alphabet:
/// `nameNNN` element names and `termN` words, one or two conjuncts, with
/// optional nesting and disjunction.
fn gen_query() -> impl Strategy<Value = String> {
    let label = || (1usize..7).prop_map(|i| format!("name{i:03}"));
    let word = || (1usize..4).prop_map(|i| format!("\"term{i}\""));
    let child = prop_oneof![
        label(),
        word(),
        (label(), word()).prop_map(|(l, w)| format!("{l}[{w}]")),
        (label(), label()).prop_map(|(l, r)| format!("({l} or {r})")),
    ];
    (label(), proptest::collection::vec(child, 1..3))
        .prop_map(|(root, cs)| format!("{root}[{}]", cs.join(" and ")))
}

type Run = (Vec<(approxql::NodeId, approxql::Cost)>, Vec<(Metric, u64)>);

fn run_direct(query: &str, n: usize, threads: usize) -> Run {
    let before = approxql::metrics_snapshot();
    let opts = EvalOptions {
        threads,
        ..EvalOptions::default()
    };
    let (hits, _) = db().query_direct_with(query, Some(n), opts).unwrap();
    let diff = approxql::metrics_snapshot().diff(&before);
    (
        hits.iter().map(|h| (h.root, h.cost)).collect(),
        diff.counters().filter(|&(_, v)| v != 0).collect(),
    )
}

fn run_schema(query: &str, n: usize, threads: usize) -> Run {
    let before = approxql::metrics_snapshot();
    let opts = EvalOptions {
        threads,
        ..EvalOptions::default()
    };
    let (hits, _) = db()
        .query_schema_with(query, n, opts, SchemaEvalConfig::default())
        .unwrap();
    let diff = approxql::metrics_snapshot().diff(&before);
    (
        hits.iter().map(|h| (h.root, h.cost)).collect(),
        diff.counters().filter(|&(_, v)| v != 0).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_direct_is_deterministic(query in gen_query(), n in 1usize..16) {
        // Warm the shared plan cache so every measured run is a cache hit;
        // otherwise the first run's compile/miss counters differ.
        let _ = run_direct(&query, n, 1);
        let (seq_hits, seq_counts) = run_direct(&query, n, 1);
        for threads in [2usize, 4, 8] {
            let (par_hits, par_counts) = run_direct(&query, n, threads);
            prop_assert_eq!(
                &par_hits, &seq_hits,
                "direct results differ at {} threads for {}", threads, query
            );
            prop_assert_eq!(
                &par_counts, &seq_counts,
                "direct work counters differ at {} threads for {}", threads, query
            );
        }
    }

    #[test]
    fn parallel_schema_is_deterministic(query in gen_query(), n in 1usize..16) {
        let _ = run_schema(&query, n, 1);
        let (seq_hits, seq_counts) = run_schema(&query, n, 1);
        for threads in [2usize, 4, 8] {
            let (par_hits, par_counts) = run_schema(&query, n, threads);
            prop_assert_eq!(
                &par_hits, &seq_hits,
                "schema results differ at {} threads for {}", threads, query
            );
            prop_assert_eq!(
                &par_counts, &seq_counts,
                "schema work counters differ at {} threads for {}", threads, query
            );
        }
    }
}
