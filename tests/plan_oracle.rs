//! Byte-identity oracle: the plan-IR evaluators must reproduce the
//! pre-refactor evaluators' results *and* work counters exactly.
//!
//! The vectors below were captured from the tree-walking evaluators
//! immediately before they were replaced by the compiled plan IR (same
//! seeds, same generator): hits as `root:cost` strings, counters as
//! sorted `name=value` strings with the (new) `plan.*` layer filtered
//! out. Tier A uses the plain cost model with distinct-label queries and
//! checks hits + full counter sets; Tier B uses generated cost tables
//! (deletes + 5 renamings per label) and checks hits only. The FIG7
//! entries additionally pin the CSE win: the shared-subplan compile must
//! do strictly fewer `merge` executions than the old per-ancestor
//! re-evaluation (65 for these queries) while returning identical hits.
//!
//! Every evaluation runs at 1, 2, and 4 worker threads and must be
//! identical at each count.

use approxql::crates::core::schema_eval::{best_n_schema, SchemaEvalConfig};
use approxql::crates::core::{direct, EvalOptions};
use approxql::crates::gen::{
    DataGenConfig, DataGenerator, QueryGenConfig, QueryGenerator, PATTERN_1, PATTERN_2,
};
use approxql::crates::index::LabelIndex;
use approxql::crates::schema::Schema;
use approxql::{metrics_snapshot, CostModel, ExpandedQuery, QueryNode};

const ORACLE: &str = r#"TIERA	11	p0	1	name051["term1095"]
  dhits10 ["8691:0", "10572:0", "8680:1", "10495:1", "8647:2", "10220:2", "8636:3"]
  dctr10 ["eval.direct_fetches=2", "eval.direct_runs=1", "index.label_fetches=2", "index.postings_fetched=226", "list.entries_produced=240", "list.fetch_ops=2", "list.outerjoin_ops=1", "list.sort_ops=1"]
  dhitsall_len 7 tail ["8647:2", "10220:2", "8636:3"]
  dctrall ["eval.direct_fetches=2", "eval.direct_runs=1", "index.label_fetches=2", "index.postings_fetched=226", "list.entries_produced=240", "list.fetch_ops=2", "list.outerjoin_ops=1", "list.sort_ops=1"]
  shits ["8691:0", "10572:0", "8680:1", "10495:1", "8647:2", "10220:2", "8636:3"]
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "eval.second_level_queries=7", "eval.secondary_rows=7", "index.label_fetches=3", "index.postings_fetched=11", "index.secondary_fetches=18", "index.secondary_rows=523", "topk.entries_produced=21", "topk.ops=4"]
TIERA	11	p0	2	name051["term1"]
  dhits10 ["7998:0", "8053:0", "8064:0", "8086:0", "8163:0", "8218:0", "8251:0", "8284:0", "8306:0", "8317:0"]
  dctr10 ["eval.direct_fetches=2", "eval.direct_runs=1", "index.label_fetches=2", "index.postings_fetched=644", "list.entries_produced=753", "list.fetch_ops=2", "list.outerjoin_ops=1", "list.sort_ops=1"]
  dhitsall_len 99 tail ["9252:2", "9461:2", "10220:2"]
  dctrall ["eval.direct_fetches=2", "eval.direct_runs=1", "index.label_fetches=2", "index.postings_fetched=644", "list.entries_produced=842", "list.fetch_ops=2", "list.outerjoin_ops=1", "list.sort_ops=1"]
  shits ["7998:0", "8284:0", "8416:0", "8647:0", "8746:0", "8812:0", "8845:0", "9395:0", "9780:0", "9791:0"]
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "eval.second_level_queries=3", "eval.secondary_rows=20", "index.label_fetches=3", "index.postings_fetched=80", "index.secondary_fetches=10", "index.secondary_rows=319", "topk.entries_produced=96", "topk.ops=4"]
TIERA	11	p0	3	name037["term867"]
  dhits10 ["3983:0", "3961:1", "3840:2", "3829:3", "3818:4"]
  dctr10 ["eval.direct_fetches=2", "eval.direct_runs=1", "index.label_fetches=2", "index.postings_fetched=243", "list.entries_produced=253", "list.fetch_ops=2", "list.outerjoin_ops=1", "list.sort_ops=1"]
  dhitsall_len 5 tail ["3840:2", "3829:3", "3818:4"]
  dctrall ["eval.direct_fetches=2", "eval.direct_runs=1", "index.label_fetches=2", "index.postings_fetched=243", "list.entries_produced=253", "list.fetch_ops=2", "list.outerjoin_ops=1", "list.sort_ops=1"]
  shits ["3983:0", "3961:1", "3840:2", "3829:3", "3818:4"]
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "eval.second_level_queries=5", "eval.secondary_rows=5", "index.label_fetches=3", "index.postings_fetched=14", "index.secondary_fetches=15", "index.secondary_rows=483", "topk.entries_produced=19", "topk.ops=4"]
TIERA	11	p1	1	name037[name051["term37708"]]
  dhits10 []
  dctr10 ["eval.direct_fetches=3", "eval.direct_runs=1", "index.label_fetches=3", "index.postings_fetched=463", "list.entries_produced=463", "list.fetch_ops=3", "list.join_ops=1", "list.outerjoin_ops=1", "list.sort_ops=1"]
  dhitsall_len 0 tail []
  dctrall ["eval.direct_fetches=3", "eval.direct_runs=1", "index.label_fetches=3", "index.postings_fetched=463", "list.entries_produced=463", "list.fetch_ops=3", "list.join_ops=1", "list.outerjoin_ops=1", "list.sort_ops=1"]
  shits []
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "index.label_fetches=4", "index.postings_fetched=15", "index.secondary_fetches=5", "index.secondary_rows=239", "topk.entries_produced=10", "topk.ops=6"]
TIERA	11	p1	2	name072[name090["term2575"]]
  dhits10 []
  dctr10 ["eval.direct_fetches=3", "eval.direct_runs=1", "index.label_fetches=3", "index.postings_fetched=114", "list.entries_produced=114", "list.fetch_ops=3", "list.join_ops=1", "list.outerjoin_ops=1", "list.sort_ops=1"]
  dhitsall_len 0 tail []
  dctrall ["eval.direct_fetches=3", "eval.direct_runs=1", "index.label_fetches=3", "index.postings_fetched=114", "list.entries_produced=114", "list.fetch_ops=3", "list.join_ops=1", "list.outerjoin_ops=1", "list.sort_ops=1"]
  shits []
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "index.label_fetches=4", "index.postings_fetched=14", "index.secondary_fetches=1", "index.secondary_rows=2", "topk.entries_produced=13", "topk.ops=6"]
TIERA	11	p1	3	name037[name051["term2868"]]
  dhits10 []
  dctr10 ["eval.direct_fetches=3", "eval.direct_runs=1", "index.label_fetches=3", "index.postings_fetched=463", "list.entries_produced=463", "list.fetch_ops=3", "list.join_ops=1", "list.outerjoin_ops=1", "list.sort_ops=1"]
  dhitsall_len 0 tail []
  dctrall ["eval.direct_fetches=3", "eval.direct_runs=1", "index.label_fetches=3", "index.postings_fetched=463", "list.entries_produced=463", "list.fetch_ops=3", "list.join_ops=1", "list.outerjoin_ops=1", "list.sort_ops=1"]
  shits []
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "index.label_fetches=4", "index.postings_fetched=15", "index.secondary_fetches=5", "index.secondary_rows=239", "topk.entries_produced=10", "topk.ops=6"]
TIERA	11	p2	1	name051[name040["term7398" and ("term1633" or "term2575")]]
  dhits10 []
  dctr10 ["eval.direct_fetches=5", "eval.direct_runs=1", "index.label_fetches=5", "index.postings_fetched=294", "list.entries_produced=294", "list.fetch_ops=5", "list.intersect_ops=1", "list.join_ops=1", "list.outerjoin_ops=3", "list.shift_ops=1", "list.sort_ops=1", "list.union_ops=1"]
  dhitsall_len 0 tail []
  dctrall ["eval.direct_fetches=5", "eval.direct_runs=1", "index.label_fetches=5", "index.postings_fetched=294", "list.entries_produced=294", "list.fetch_ops=5", "list.intersect_ops=1", "list.join_ops=1", "list.outerjoin_ops=3", "list.shift_ops=1", "list.sort_ops=1", "list.union_ops=1"]
  shits []
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "index.label_fetches=6", "index.postings_fetched=18", "index.secondary_fetches=4", "index.secondary_rows=223", "topk.entries_produced=14", "topk.ops=13"]
TIERA	11	p2	2	name021[name049["term6532" and ("term96" or "term86")]]
  dhits10 []
  dctr10 ["eval.direct_fetches=5", "eval.direct_runs=1", "index.label_fetches=5", "index.postings_fetched=29", "list.entries_produced=31", "list.fetch_ops=5", "list.intersect_ops=1", "list.join_ops=1", "list.outerjoin_ops=3", "list.shift_ops=1", "list.sort_ops=1", "list.union_ops=1"]
  dhitsall_len 0 tail []
  dctrall ["eval.direct_fetches=5", "eval.direct_runs=1", "index.label_fetches=5", "index.postings_fetched=29", "list.entries_produced=31", "list.fetch_ops=5", "list.intersect_ops=1", "list.join_ops=1", "list.outerjoin_ops=3", "list.shift_ops=1", "list.sort_ops=1", "list.union_ops=1"]
  shits []
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "index.label_fetches=6", "index.postings_fetched=22", "index.secondary_fetches=2", "index.secondary_rows=4", "topk.entries_produced=22", "topk.ops=13"]
TIERA	11	p2	3	name003[name000["term1913" and ("term360" or "term4")]]
  dhits10 []
  dctr10 ["eval.direct_fetches=5", "eval.direct_runs=1", "index.label_fetches=5", "index.postings_fetched=185", "list.entries_produced=194", "list.fetch_ops=5", "list.intersect_ops=1", "list.join_ops=1", "list.outerjoin_ops=3", "list.shift_ops=1", "list.sort_ops=1", "list.union_ops=1"]
  dhitsall_len 0 tail []
  dctrall ["eval.direct_fetches=5", "eval.direct_runs=1", "index.label_fetches=5", "index.postings_fetched=185", "list.entries_produced=194", "list.fetch_ops=5", "list.intersect_ops=1", "list.join_ops=1", "list.outerjoin_ops=3", "list.shift_ops=1", "list.sort_ops=1", "list.union_ops=1"]
  shits []
  sctr ["eval.schema_rounds=2", "eval.schema_runs=2", "index.label_fetches=11", "index.postings_fetched=121", "index.secondary_fetches=1", "index.secondary_rows=3", "topk.entries_produced=308", "topk.ops=26"]
TIERB	11	p1	0	name037[name074["term55"]]
  dhits10 ["3939:2", "5864:2", "5875:2", "3917:3", "5842:3", "8416:3", "9164:3", "3840:4", "3884:4", "3994:4"]
  shits ["3939:2", "5864:2", "5875:2", "3917:3", "5842:3", "8416:3", "9164:3", "4159:4", "4522:4", "4654:4"]
TIERB	11	p1	1	name037[name037["term2"]]
  dhits10 ["3818:0", "3829:0", "3851:0", "3961:0", "4027:0", "4038:0", "4104:0", "4148:0", "4170:0", "4247:0"]
  shits ["3818:0", "3829:0", "4027:0", "4148:0", "4313:0", "4412:0", "4522:0", "4654:0", "4852:0", "5776:0"]
TIERB	11	p1	2	name040[name090["term0"]]
  dhits10 ["6612:3", "6634:3", "6645:3", "6656:3", "6678:3", "6700:3", "6711:3", "6722:3", "6733:3", "6766:3"]
  shits ["6612:3", "6634:3", "6645:3", "6722:3", "6810:3", "6865:3", "6920:3", "7085:3", "7382:3", "7393:3"]
TIERB	11	p2	0	name037[name074["term55" and ("term11341" or "term0")]]
  dhits10 ["3939:2", "5875:2", "3818:3", "3851:3", "3884:3", "3906:3", "3917:3", "3950:3", "3961:3", "3983:3"]
  shits ["3939:2", "5875:2", "3818:3", "4148:3", "4852:3", "4863:3", "5149:3", "5160:3", "5303:3", "5776:3"]
TIERB	11	p2	1	name037[name090["term1419" and ("term203" or "term121")]]
  dhits10 ["4148:7", "3818:8", "4654:8", "3202:9", "3609:9", "3147:10", "3510:10", "4940:10", "3004:11", "3257:11"]
  shits ["4148:7", "3818:8", "4654:8", "3202:9", "3609:9", "3147:10", "3510:10", "4940:10", "3004:11", "3257:11"]
TIERB	11	p2	2	name037[name071["term287" and ("term3068" or "term0")]]
  dhits10 ["3818:6", "3840:6", "3851:6", "3917:6", "3961:6", "4027:6", "4038:6", "4104:6", "4159:6", "4170:6"]
  shits ["3818:6", "3840:6", "4027:6", "4159:6", "4313:6", "4412:6", "4522:6", "4852:6", "5149:6", "5776:6"]
TIERA	12	p0	1	name060["term4"]
  dhits10 ["188:0", "3873:0", "6733:0", "9043:0", "10616:0"]
  dctr10 ["eval.direct_fetches=2", "eval.direct_runs=1", "index.label_fetches=2", "index.postings_fetched=181", "list.entries_produced=191", "list.fetch_ops=2", "list.outerjoin_ops=1", "list.sort_ops=1"]
  dhitsall_len 5 tail ["6733:0", "9043:0", "10616:0"]
  dctrall ["eval.direct_fetches=2", "eval.direct_runs=1", "index.label_fetches=2", "index.postings_fetched=181", "list.entries_produced=191", "list.fetch_ops=2", "list.outerjoin_ops=1", "list.sort_ops=1"]
  shits ["188:0", "3873:0", "6733:0", "9043:0", "10616:0"]
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "eval.second_level_queries=3", "eval.secondary_rows=5", "index.label_fetches=3", "index.postings_fetched=100", "index.secondary_fetches=9", "index.secondary_rows=31", "topk.entries_produced=103", "topk.ops=4"]
TIERA	12	p0	2	name020["term0"]
  dhits10 ["78:0", "111:0", "133:0", "551:0", "562:0", "848:0", "881:0", "1750:0", "2949:0", "2960:0"]
  dctr10 ["eval.direct_fetches=2", "eval.direct_runs=1", "index.label_fetches=2", "index.postings_fetched=871", "list.entries_produced=915", "list.fetch_ops=2", "list.outerjoin_ops=1", "list.sort_ops=1"]
  dhitsall_len 34 tail ["10319:1", "10374:1", "10484:1"]
  dctrall ["eval.direct_fetches=2", "eval.direct_runs=1", "index.label_fetches=2", "index.postings_fetched=871", "list.entries_produced=939", "list.fetch_ops=2", "list.outerjoin_ops=1", "list.sort_ops=1"]
  shits ["78:0", "111:0", "551:0", "562:0", "881:0", "3697:0", "3895:0", "3917:0", "10385:0", "10429:0"]
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "eval.second_level_queries=2", "eval.secondary_rows=11", "index.label_fetches=3", "index.postings_fetched=195", "index.secondary_fetches=11", "index.secondary_rows=78", "topk.entries_produced=235", "topk.ops=4"]
TIERA	12	p0	3	name053["term254"]
  dhits10 []
  dctr10 ["eval.direct_fetches=2", "eval.direct_runs=1", "index.label_fetches=2", "index.postings_fetched=28", "list.entries_produced=28", "list.fetch_ops=2", "list.outerjoin_ops=1", "list.sort_ops=1"]
  dhitsall_len 0 tail []
  dctrall ["eval.direct_fetches=2", "eval.direct_runs=1", "index.label_fetches=2", "index.postings_fetched=28", "list.entries_produced=28", "list.fetch_ops=2", "list.outerjoin_ops=1", "list.sort_ops=1"]
  shits []
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "index.label_fetches=3", "index.postings_fetched=11", "index.secondary_fetches=5", "index.secondary_rows=27", "topk.entries_produced=6", "topk.ops=4"]
TIERA	12	p1	1	name060[name018["term3844"]]
  dhits10 []
  dctr10 ["eval.direct_fetches=3", "eval.direct_runs=1", "index.label_fetches=3", "index.postings_fetched=29", "list.entries_produced=29", "list.fetch_ops=3", "list.join_ops=1", "list.outerjoin_ops=1", "list.sort_ops=1"]
  dhitsall_len 0 tail []
  dctrall ["eval.direct_fetches=3", "eval.direct_runs=1", "index.label_fetches=3", "index.postings_fetched=29", "list.entries_produced=29", "list.fetch_ops=3", "list.join_ops=1", "list.outerjoin_ops=1", "list.sort_ops=1"]
  shits []
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "index.label_fetches=4", "index.postings_fetched=12", "index.secondary_fetches=3", "index.secondary_rows=13", "topk.entries_produced=9", "topk.ops=6"]
TIERA	12	p1	2	name048[name020["term15268"]]
  dhits10 []
  dctr10 ["eval.direct_fetches=3", "eval.direct_runs=1", "index.label_fetches=3", "index.postings_fetched=219", "list.entries_produced=219", "list.fetch_ops=3", "list.join_ops=1", "list.outerjoin_ops=1", "list.sort_ops=1"]
  dhitsall_len 0 tail []
  dctrall ["eval.direct_fetches=3", "eval.direct_runs=1", "index.label_fetches=3", "index.postings_fetched=219", "list.entries_produced=219", "list.fetch_ops=3", "list.join_ops=1", "list.outerjoin_ops=1", "list.sort_ops=1"]
  shits []
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "index.label_fetches=4", "index.postings_fetched=26", "index.secondary_fetches=9", "index.secondary_rows=175", "topk.entries_produced=17", "topk.ops=6"]
TIERA	12	p1	3	name013[name048["term1586"]]
  dhits10 []
  dctr10 ["eval.direct_fetches=3", "eval.direct_runs=1", "index.label_fetches=3", "index.postings_fetched=199", "list.entries_produced=199", "list.fetch_ops=3", "list.join_ops=1", "list.outerjoin_ops=1", "list.sort_ops=1"]
  dhitsall_len 0 tail []
  dctrall ["eval.direct_fetches=3", "eval.direct_runs=1", "index.label_fetches=3", "index.postings_fetched=199", "list.entries_produced=199", "list.fetch_ops=3", "list.join_ops=1", "list.outerjoin_ops=1", "list.sort_ops=1"]
  shits []
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "index.label_fetches=4", "index.postings_fetched=20", "index.secondary_fetches=5", "index.secondary_rows=23", "topk.entries_produced=15", "topk.ops=6"]
TIERA	12	p2	1	name060[name018["term3844" and ("term4" or "term1329")]]
  dhits10 []
  dctr10 ["eval.direct_fetches=5", "eval.direct_runs=1", "index.label_fetches=5", "index.postings_fetched=199", "list.entries_produced=215", "list.fetch_ops=5", "list.intersect_ops=1", "list.join_ops=1", "list.outerjoin_ops=3", "list.shift_ops=1", "list.sort_ops=1", "list.union_ops=1"]
  dhitsall_len 0 tail []
  dctrall ["eval.direct_fetches=5", "eval.direct_runs=1", "index.label_fetches=5", "index.postings_fetched=199", "list.entries_produced=215", "list.fetch_ops=5", "list.intersect_ops=1", "list.join_ops=1", "list.outerjoin_ops=3", "list.shift_ops=1", "list.sort_ops=1", "list.union_ops=1"]
  shits []
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "index.label_fetches=6", "index.postings_fetched=108", "index.secondary_fetches=3", "index.secondary_rows=13", "topk.entries_produced=123", "topk.ops=13"]
TIERA	12	p2	2	name043[name063["term0" and ("term41873" or "term1586")]]
  dhits10 []
  dctr10 ["eval.direct_fetches=5", "eval.direct_runs=1", "index.label_fetches=5", "index.postings_fetched=872", "list.entries_produced=883", "list.fetch_ops=5", "list.intersect_ops=1", "list.join_ops=1", "list.outerjoin_ops=3", "list.shift_ops=1", "list.sort_ops=1", "list.union_ops=1"]
  dhitsall_len 0 tail []
  dctrall ["eval.direct_fetches=5", "eval.direct_runs=1", "index.label_fetches=5", "index.postings_fetched=872", "list.entries_produced=883", "list.fetch_ops=5", "list.intersect_ops=1", "list.join_ops=1", "list.outerjoin_ops=3", "list.shift_ops=1", "list.sort_ops=1", "list.union_ops=1"]
  shits []
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "index.label_fetches=6", "index.postings_fetched=195", "index.secondary_fetches=4", "index.secondary_rows=22", "topk.entries_produced=194", "topk.ops=13"]
TIERA	12	p2	3	name048[name065["term19" and ("term32" or "term68928")]]
  dhits10 []
  dctr10 ["eval.direct_fetches=5", "eval.direct_runs=1", "index.label_fetches=5", "index.postings_fetched=263", "list.entries_produced=264", "list.fetch_ops=5", "list.intersect_ops=1", "list.join_ops=1", "list.outerjoin_ops=3", "list.shift_ops=1", "list.sort_ops=1", "list.union_ops=1"]
  dhitsall_len 0 tail []
  dctrall ["eval.direct_fetches=5", "eval.direct_runs=1", "index.label_fetches=5", "index.postings_fetched=263", "list.entries_produced=264", "list.fetch_ops=5", "list.intersect_ops=1", "list.join_ops=1", "list.outerjoin_ops=3", "list.shift_ops=1", "list.sort_ops=1", "list.union_ops=1"]
  shits []
  sctr ["eval.schema_rounds=1", "eval.schema_runs=1", "index.label_fetches=6", "index.postings_fetched=90", "index.secondary_fetches=9", "index.secondary_rows=175", "topk.entries_produced=82", "topk.ops=13"]
TIERB	12	p1	0	name061[name043["term435"]]
  dhits10 ["1486:7", "1508:7", "2388:7", "2476:7", "3147:7", "4467:7", "5534:7", "6931:7", "7855:7", "8251:7"]
  shits ["1486:7", "1508:7", "2388:7", "2476:7", "4467:7", "5534:7", "6931:7", "7855:7", "8251:7", "9736:7"]
TIERB	12	p1	1	name066[name005["term49"]]
  dhits10 ["6546:5", "10759:5", "10979:5", "6513:6", "10748:6", "10946:6", "2168:7", "4621:7", "6502:7", "10693:7"]
  shits ["6546:5", "10759:5", "10979:5", "6513:6", "10748:6", "10946:6", "2168:7", "4621:7", "6502:7", "10693:7"]
TIERB	12	p1	2	name047[name048["term14"]]
  dhits10 ["9076:4", "23:6", "2454:6", "7360:6", "12:7", "2366:7", "2619:7", "4148:7", "4775:7", "4973:7"]
  shits ["9076:4", "23:6", "2454:6", "7360:6", "12:7", "2366:7", "4148:7", "4775:7", "6304:7", "9439:7"]
TIERB	12	p2	0	name061[name043["term435" and ("term9718" or "term0")]]
  dhits10 ["4467:8", "100:9", "595:9", "628:9", "892:9", "903:9", "1761:9", "3730:9", "3950:9", "3961:9"]
  shits ["4467:8", "100:9", "595:9", "628:9", "892:9", "903:9", "3730:9", "3950:9", "10275:9", "10495:9"]
TIERB	12	p2	1	name046[name075["term4523" and ("term1038" or "term6")]]
  dhits10 ["2267:12", "10143:12", "10154:12", "298:13", "1893:13", "1937:13", "2047:13", "2058:13", "2157:13", "2201:13"]
  shits ["2267:12", "10143:12", "10154:12", "298:13", "1893:13", "2157:13", "5424:13", "8460:13", "8559:13", "8878:13"]
TIERB	12	p2	2	name020[name015["term0" and ("term324" or "term47219")]]
  dhits10 ["133:7", "3895:7", "4170:7", "10385:7", "56:8", "111:8", "848:8", "1750:8", "3917:8", "4291:8"]
  shits ["133:7", "3895:7", "4170:7", "10385:7", "56:8", "111:8", "848:8", "3917:8", "10374:8", "10429:8"]
FIG7	0	name034[name034["term1445"]]
  hits ["5182:0", "5171:1", "45:2", "78:2", "133:2", "144:2", "177:2", "210:2", "276:2", "287:2"]
  ctr ["eval.direct_fetches=12", "eval.direct_runs=1", "index.label_fetches=12", "index.postings_fetched=1155", "list.entries_produced=36853", "list.fetch_ops=12", "list.join_ops=6", "list.merge_ops=65", "list.outerjoin_ops=6", "list.shift_ops=6", "list.sort_ops=1", "list.union_ops=6"]
FIG7	1	name034[name034["term0"]]
  hits ["45:0", "78:0", "133:0", "144:0", "155:0", "177:0", "210:0", "276:0", "287:0", "353:0"]
  ctr ["eval.direct_fetches=12", "eval.direct_runs=1", "index.label_fetches=12", "index.postings_fetched=1191", "list.entries_produced=38312", "list.fetch_ops=12", "list.join_ops=6", "list.merge_ops=65", "list.outerjoin_ops=6", "list.shift_ops=6", "list.sort_ops=1", "list.union_ops=6"]
"#;

/// `key line` → `field name` → captured value (the rest of the line).
type Oracle = std::collections::HashMap<String, std::collections::HashMap<String, String>>;

fn parse_oracle() -> Oracle {
    let mut out = Oracle::new();
    let mut current = String::new();
    for line in ORACLE.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(field) = line.strip_prefix("  ") {
            let (name, value) = field.split_once(' ').expect("malformed oracle field");
            out.get_mut(&current)
                .expect("field before record")
                .insert(name.to_string(), value.to_string());
        } else {
            current = line.to_string();
            out.insert(current.clone(), Default::default());
        }
    }
    out
}

fn field<'a>(oracle: &'a Oracle, key: &str, name: &str) -> &'a str {
    oracle
        .get(key)
        .unwrap_or_else(|| panic!("generated query drifted from captured oracle: {key}"))
        .get(name)
        .unwrap_or_else(|| panic!("missing oracle field {name} for {key}"))
}

/// Same filter the capture harness used: every (type, label) pair in the
/// query occurs once, so Tier A counter sets are independent of fetch
/// dedup order.
fn distinct_labels(q: &QueryNode) -> bool {
    fn collect(n: &QueryNode, out: &mut Vec<(bool, String)>) {
        match n {
            QueryNode::Name { label, child } => {
                out.push((false, label.clone()));
                if let Some(c) = child {
                    collect(c, out);
                }
            }
            QueryNode::Text { word } => out.push((true, word.clone())),
            QueryNode::And(l, r) | QueryNode::Or(l, r) => {
                collect(l, out);
                collect(r, out);
            }
        }
    }
    let mut v = Vec::new();
    collect(q, &mut v);
    let n = v.len();
    v.sort();
    v.dedup();
    v.len() == n
}

/// Nonzero counters as sorted `name=value` strings, with the plan and
/// postings layers (which did not exist at capture time) filtered out.
fn counters_str(d: &approxql::MetricsSnapshot) -> Vec<String> {
    let mut v: Vec<String> = d
        .counters()
        .filter(|&(m, c)| {
            c > 0 && !m.name().starts_with("plan.") && !m.name().starts_with("postings.")
        })
        .map(|(m, c)| format!("{}={}", m.name(), c))
        .collect();
    v.sort();
    v
}

fn counter_map(d: &approxql::MetricsSnapshot) -> std::collections::HashMap<String, u64> {
    d.counters()
        .filter(|&(_, c)| c > 0)
        .map(|(m, c)| (m.name().to_string(), c))
        .collect()
}

fn hits_str(hits: &[(u32, approxql::Cost)]) -> Vec<String> {
    hits.iter().map(|(r, c)| format!("{r}:{c}")).collect()
}

fn opts_for(threads: usize) -> EvalOptions {
    EvalOptions {
        threads,
        ..EvalOptions::default()
    }
}

#[test]
fn tier_a_hits_and_counters_match_pre_refactor_oracle() {
    let oracle = parse_oracle();
    for tree_seed in [11u64, 12] {
        let mut cfg = DataGenConfig::paper_scale_divided(1000);
        cfg.seed = tree_seed;
        let plain = CostModel::new();
        let tree = DataGenerator::new(cfg).generate_tree(&plain);
        let index = LabelIndex::build(&tree);
        let schema = Schema::build(&tree, &plain);

        for (pname, pattern) in [("p0", "name[term]"), ("p1", PATTERN_1), ("p2", PATTERN_2)] {
            let qcfg = QueryGenConfig {
                renamings_per_label: 0,
                seed: tree_seed * 100,
                ..QueryGenConfig::default()
            };
            let mut qgen = QueryGenerator::new(&tree, &index, qcfg);
            let mut taken = 0;
            for gq in qgen.generate_batch(pattern, 12) {
                let q = approxql::parse_query(&gq.query).unwrap();
                if !distinct_labels(&q.root) {
                    continue;
                }
                taken += 1;
                if taken > 3 {
                    break;
                }
                let key = format!("TIERA\t{tree_seed}\t{pname}\t{taken}\t{}", gq.query);
                let ex = ExpandedQuery::build(&q, &plain);
                for threads in [1usize, 2, 4] {
                    let ctx = format!("{key} at {threads} threads");
                    let opts = opts_for(threads);
                    let b = metrics_snapshot();
                    let (dh, _) = direct::best_n(&ex, &index, tree.interner(), Some(10), opts);
                    let dd = metrics_snapshot().diff(&b);
                    assert_eq!(
                        format!("{:?}", hits_str(&dh)),
                        field(&oracle, &key, "dhits10"),
                        "direct best-10 hits: {ctx}"
                    );
                    assert_eq!(
                        format!("{:?}", counters_str(&dd)),
                        field(&oracle, &key, "dctr10"),
                        "direct best-10 counters: {ctx}"
                    );
                    let b = metrics_snapshot();
                    let (da, _) = direct::best_n(&ex, &index, tree.interner(), None, opts);
                    let dda = metrics_snapshot().diff(&b);
                    assert_eq!(
                        format!(
                            "{} tail {:?}",
                            da.len(),
                            hits_str(&da[da.len().saturating_sub(3)..])
                        ),
                        field(&oracle, &key, "dhitsall_len"),
                        "direct unbounded hits: {ctx}"
                    );
                    assert_eq!(
                        format!("{:?}", counters_str(&dda)),
                        field(&oracle, &key, "dctrall"),
                        "direct unbounded counters: {ctx}"
                    );
                    let b = metrics_snapshot();
                    let (sh, _) = best_n_schema(
                        &ex,
                        &schema,
                        tree.interner(),
                        10,
                        opts,
                        SchemaEvalConfig::default(),
                    );
                    let sd = metrics_snapshot().diff(&b);
                    assert_eq!(
                        format!("{:?}", hits_str(&sh)),
                        field(&oracle, &key, "shits"),
                        "schema best-10 hits: {ctx}"
                    );
                    assert_eq!(
                        format!("{:?}", counters_str(&sd)),
                        field(&oracle, &key, "sctr"),
                        "schema best-10 counters: {ctx}"
                    );
                }
            }
            assert!(taken >= 3, "oracle capture took 3 queries per pattern");
        }
    }
}

#[test]
fn tier_b_renaming_hits_match_pre_refactor_oracle() {
    let oracle = parse_oracle();
    for tree_seed in [11u64, 12] {
        let mut cfg = DataGenConfig::paper_scale_divided(1000);
        cfg.seed = tree_seed;
        let plain = CostModel::new();
        let tree = DataGenerator::new(cfg).generate_tree(&plain);
        let index = LabelIndex::build(&tree);
        let schema = Schema::build(&tree, &plain);

        for (pname, pattern) in [("p1", PATTERN_1), ("p2", PATTERN_2)] {
            let qcfg = QueryGenConfig {
                renamings_per_label: 5,
                seed: tree_seed * 100 + 7,
                ..QueryGenConfig::default()
            };
            let mut qgen = QueryGenerator::new(&tree, &index, qcfg);
            for (i, gq) in qgen.generate_batch(pattern, 3).into_iter().enumerate() {
                let key = format!("TIERB\t{tree_seed}\t{pname}\t{i}\t{}", gq.query);
                let q = approxql::parse_query(&gq.query).unwrap();
                let ex = ExpandedQuery::build(&q, &gq.costs);
                for threads in [1usize, 2, 4] {
                    let ctx = format!("{key} at {threads} threads");
                    let opts = opts_for(threads);
                    let (dh, _) = direct::best_n(&ex, &index, tree.interner(), Some(10), opts);
                    assert_eq!(
                        format!("{:?}", hits_str(&dh)),
                        field(&oracle, &key, "dhits10"),
                        "direct best-10 hits: {ctx}"
                    );
                    let (sh, _) = best_n_schema(
                        &ex,
                        &schema,
                        tree.interner(),
                        10,
                        opts,
                        SchemaEvalConfig::default(),
                    );
                    assert_eq!(
                        format!("{:?}", hits_str(&sh)),
                        field(&oracle, &key, "shits"),
                        "schema best-10 hits: {ctx}"
                    );
                }
            }
        }
    }
}

#[test]
fn cse_beats_pre_refactor_merge_counts_on_renaming_queries() {
    // The old walk re-evaluated each child's renaming merge chain once per
    // outer ancestor renaming: 65 merges for these 5-renaming pattern-1
    // queries. CSE compiles the chain once, so merges must drop strictly
    // while hits stay identical.
    let oracle = parse_oracle();
    let mut cfg = DataGenConfig::paper_scale_divided(2000);
    cfg.seed = 2002;
    let costs = CostModel::new();
    let tree = DataGenerator::new(cfg).generate_tree(&costs);
    let index = LabelIndex::build(&tree);
    let qcfg = QueryGenConfig {
        renamings_per_label: 5,
        seed: 2002 + 5,
        ..QueryGenConfig::default()
    };
    let mut qgen = QueryGenerator::new(&tree, &index, qcfg);
    for (i, gq) in qgen.generate_batch(PATTERN_1, 2).into_iter().enumerate() {
        let key = format!("FIG7\t{i}\t{}", gq.query);
        let q = approxql::parse_query(&gq.query).unwrap();
        let ex = ExpandedQuery::build(&q, &gq.costs);
        let b = metrics_snapshot();
        let (dh, _) = direct::best_n(&ex, &index, tree.interner(), Some(10), opts_for(1));
        let d = metrics_snapshot().diff(&b);
        assert_eq!(
            format!("{:?}", hits_str(&dh)),
            field(&oracle, &key, "hits"),
            "hits: {key}"
        );
        let new = counter_map(&d);
        assert!(
            new.get("plan.cse_reuses").copied().unwrap_or(0) > 0,
            "{key}"
        );
        // Every captured list-op counter, parsed from `["name=v", ...]`.
        let old: std::collections::HashMap<&str, u64> = field(&oracle, &key, "ctr")
            .trim_matches(|c| c == '[' || c == ']')
            .split(", ")
            .map(|s| s.trim_matches('"').split_once('=').unwrap())
            .map(|(k, v)| (k, v.parse().unwrap()))
            .collect();
        for (name, &old_v) in &old {
            if !name.starts_with("list.") {
                continue;
            }
            let new_v = new.get(*name).copied().unwrap_or(0);
            assert!(new_v <= old_v, "{key}: {name} regressed {old_v} -> {new_v}");
        }
        assert!(
            new["list.merge_ops"] < old["list.merge_ops"],
            "{key}: CSE must strictly reduce merges ({} -> {})",
            old["list.merge_ops"],
            new["list.merge_ops"]
        );
    }
}
