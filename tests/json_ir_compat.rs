//! Compatibility suite for the versioned JSON query-IR.
//!
//! The fixtures under `tests/golden/json_ir/` are the compatibility
//! contract: committed v1 documents must keep parsing in every future
//! build (additions to the IR bump the version; v1 readers are never
//! broken), and documents with an unknown version must be rejected with
//! the dedicated version error — never misparsed as something else.

use approxql::{parse_query, QueryInput, Surface};

const V1_SIMPLE: &str = include_str!("golden/json_ir/v1_simple.json");
const V1_FIGURE2: &str = include_str!("golden/json_ir/v1_figure2.json");
const V1_FORMATTED: &str = include_str!("golden/json_ir/v1_formatted.json");
const UNKNOWN_VERSION: &str = include_str!("golden/json_ir/unknown_version.json");

#[test]
fn committed_v1_fixtures_keep_parsing() {
    for (fixture, classic) in [
        (V1_SIMPLE, r#"cd[title["piano"]]"#),
        (
            V1_FIGURE2,
            r#"cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]]"#,
        ),
        (
            V1_FORMATTED,
            r#"catalog[(cd["piano" and "concerto"] and dvd and "brahms")
                      or mc["sonata" or track]]"#,
        ),
    ] {
        let from_ir = QueryInput::with_surface(fixture, Surface::Json)
            .parse()
            .unwrap_or_else(|e| panic!("v1 fixture stopped parsing: {e}\n{fixture}"));
        let want = parse_query(classic).unwrap().normalize();
        assert_eq!(from_ir, want, "fixture drifted from its classic spelling");
        // Auto-detection classifies every fixture as JSON-IR.
        assert_eq!(Surface::detect(fixture), Surface::Json);
    }
}

#[test]
fn canonical_fixtures_are_translate_output() {
    // `v1_simple`/`v1_figure2` are canonical emitter output; re-emitting
    // the parsed query must reproduce them byte-for-byte (modulo the
    // trailing newline `--out` appends).
    for fixture in [V1_SIMPLE, V1_FIGURE2] {
        let q = QueryInput::new(fixture).parse().unwrap();
        assert_eq!(q.to_json_ir(), fixture.trim_end());
    }
}

#[test]
fn unknown_version_is_rejected_with_the_version_error() {
    let err = QueryInput::new(UNKNOWN_VERSION).parse().unwrap_err();
    assert!(
        err.message.contains("unsupported query-IR version 2"),
        "wrong error for an unknown version: {err}"
    );
    assert!(
        err.message.contains("this build reads v1"),
        "error should name the supported version: {err}"
    );
}
