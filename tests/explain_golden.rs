//! Golden-file tests for the `--explain` plan rendering.
//!
//! The rendering is part of the CLI contract: stable operator ordering
//! (handles ascend in construction order, children indent under their
//! consumer), CSE-shared nodes printed in full exactly once with a
//! `shared ×k` marker and as `(see above)` references thereafter, and
//! per-operator output-entry counts from a real single-threaded
//! execution. Regenerate a golden file by printing
//! `Database::explain_direct` for the same query and reviewing the diff.

use approxql::{Database, EvalOptions};

const CATALOG: &str = "<catalog>\
    <cd><title>piano concerto</title><composer>rachmaninov</composer></cd>\
    <cd><title>kinderszenen</title>\
        <tracks><track><title>vivace piano</title></track></tracks></cd>\
    </catalog>";

fn explain(query: &str) -> String {
    let db = Database::from_xml_str(CATALOG, approxql::tables::paper_section6_costs()).unwrap();
    let opts = EvalOptions {
        threads: 1,
        ..EvalOptions::default()
    };
    db.explain_direct(query, Some(5), opts).unwrap()
}

#[test]
fn explain_simple_query_matches_golden() {
    assert_eq!(
        explain(r#"cd[title["piano"]]"#),
        include_str!("golden/explain_simple.txt")
    );
}

#[test]
fn explain_figure2_query_matches_golden() {
    assert_eq!(
        explain(r#"cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]]"#),
        include_str!("golden/explain_figure2.txt")
    );
}

#[test]
fn explain_is_thread_count_invariant() {
    // The counts come from operator *outputs*, which are deterministic at
    // any thread count; the rendering must be too.
    let db = Database::from_xml_str(CATALOG, approxql::tables::paper_section6_costs()).unwrap();
    let query = r#"cd[track[title["piano"]]]"#;
    let base = db
        .explain_direct(
            query,
            Some(5),
            EvalOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
    for threads in [2usize, 4] {
        let got = db
            .explain_direct(
                query,
                Some(5),
                EvalOptions {
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(got, base, "explain differs at {threads} threads");
    }
}

#[test]
fn golden_files_show_cse_sharing() {
    // Guard the property the goldens exist to demonstrate: shared subplans
    // are rendered once and referenced thereafter.
    let text = include_str!("golden/explain_figure2.txt");
    assert!(text.contains("shared ×"));
    assert!(text.contains("(see above)"));
    let shared: usize = text.matches("shared ×").count();
    assert!(shared >= 5, "figure-2 query has many shared subplans");
}
