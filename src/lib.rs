#![forbid(unsafe_code)]
//! # approxql — approximate tree-pattern queries over XML
//!
//! A complete reproduction of Torsten Schlieder, *"Schema-Driven Evaluation
//! of Approximate Tree-Pattern Queries"* (EDBT 2002): the approXQL query
//! language, its cost-based transformation semantics, the direct evaluation
//! algorithm (`primary`), and the schema-driven best-*n* evaluation built on
//! a DataGuide-style structural summary.
//!
//! This facade crate re-exports the public API of every subsystem crate.
//! Most users only need [`Database`]:
//!
//! ```
//! use approxql::{Database, CostModel, NodeType, Cost};
//!
//! let xml = r#"<catalog>
//!   <cd><title>piano concerto</title><composer>rachmaninov</composer></cd>
//!   <cd><title>piano sonata</title><composer>brahms</composer></cd>
//! </catalog>"#;
//!
//! let costs = CostModel::builder()
//!     .delete(NodeType::Text, "concerto", Cost::finite(6))
//!     .build();
//! let db = Database::from_xml_str(xml, costs).unwrap();
//! let hits = db.query_direct(r#"cd[title["piano" and "concerto"]]"#, Some(10)).unwrap();
//! assert_eq!(hits.len(), 2); // exact match + match with "concerto" deleted
//! assert_eq!(hits[0].cost, Cost::ZERO);
//! ```

pub use approxql_core::{
    Database, DatabaseError, DbFile, EvalOptions, EvalStats, MutationDelta, QueryHit,
    ReferenceEvaluator,
};
pub use approxql_metrics::{
    reset as reset_metrics, snapshot as metrics_snapshot, Metric, MetricsSnapshot, TimerMetric,
};

pub use approxql_cost::{
    parse_cost_file, tables, write_cost_file, Cost, CostFileError, CostModel, CostModelBuilder,
    NodeType,
};
pub use approxql_query::{
    expand::{ExpandedNode, ExpandedQuery, RepType},
    parse_query, ConjunctiveNode, ConjunctiveQuery, ParseError, Query, QueryInput, QueryNode,
    Surface,
};
pub use approxql_tree::{DataTree, DataTreeBuilder, NodeId, TreeError};
pub use approxql_xml::{parse_document, Document, XmlError, XmlEvent, XmlReader};

/// Re-export of the whole subsystem crates for advanced use.
pub mod crates {
    pub use approxql_core as core;
    pub use approxql_cost as cost;
    pub use approxql_eval as eval;
    pub use approxql_gen as gen;
    pub use approxql_index as index;
    pub use approxql_metrics as metrics;
    pub use approxql_plan as plan;
    pub use approxql_query as query;
    pub use approxql_schema as schema;
    pub use approxql_storage as storage;
    pub use approxql_tree as tree;
    pub use approxql_xml as xml;
}
