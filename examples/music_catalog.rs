//! The paper's introduction scenario, end to end.
//!
//! "A user may be interested in a CD with piano concertos by Rachmaninov.
//! … The user cannot specify that she prefers CDs with the title 'piano
//! concerto' over CDs having a track title 'piano concerto'. Similarly,
//! the user cannot express her preference for the composer Rachmaninov
//! over the performer Rachmaninov."
//!
//! approXQL expresses exactly these preferences through transformation
//! costs: every relaxation (search in track titles instead of titles, a
//! performer instead of a composer, an MC instead of a CD, …) is possible
//! but *ranked below* closer matches.
//!
//! ```sh
//! cargo run --example music_catalog
//! ```

use approxql::{tables, Database, QueryHit};

const CATALOG: &str = r#"<catalog>
    <cd id="c1">
        <title>Piano Concerto No. 2</title>
        <composer>Sergei Rachmaninov</composer>
    </cd>
    <cd id="c2">
        <category>Piano concerto</category>
        <title>Romantic favourites</title>
        <composer>Various</composer>
    </cd>
    <cd id="c3">
        <title>Complete works</title>
        <tracks>
            <track><title>Piano concerto in F</title></track>
            <track><title>Rhapsody in blue</title></track>
        </tracks>
        <composer>Gershwin</composer>
    </cd>
    <cd id="c4">
        <title>Piano Concerto No. 3</title>
        <performer>Rachmaninov</performer>
    </cd>
    <mc id="m1">
        <title>Piano Concerto No. 1</title>
        <composer>Rachmaninov</composer>
    </mc>
    <dvd id="d1">
        <title>Piano Concerto live</title>
        <composer>Rachmaninov</composer>
    </dvd>
    <cd id="c5">
        <title>Cello suites</title>
        <composer>Bach</composer>
    </cd>
</catalog>"#;

fn describe(db: &Database, hit: QueryHit) -> String {
    let el = db.result_element(hit).expect("results are struct subtrees");
    // Attributes come back as child elements (the data model erases the
    // element/attribute distinction, Section 4).
    let id = el
        .find_child("id")
        .map(|c| c.text_content())
        .unwrap_or_else(|| "?".to_owned());
    format!("cost {:>2}  <{} id={}>", hit.cost, el.name, id)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The example cost table of Section 6: title -> category renames cost
    // 4, cd -> mc costs 4, cd -> dvd costs 6, composer -> performer costs
    // 4, deleting "concerto" costs 6, inserting tracks/track costs 1 each…
    let costs = tables::paper_section6_costs();
    let db = Database::from_xml_str(CATALOG, costs)?;

    // ---- Query 1: just the title -------------------------------------
    let q1 = r#"cd[title["piano" and "concerto"]]"#;
    println!("query 1: {q1}\n");
    let hits = db.query_direct(q1, None)?;
    for hit in &hits {
        println!("  {}", describe(&db, *hit));
    }
    println!(
        "\n  -> exact title matches (c1, c4) rank first; the track-title \
         match (c3) pays 2 insertions; the category match (c2) pays the \
         title->category rename (4); the MC (4) and DVD (6) pay the scope \
         rename; the cello CD is absent (its query words cannot match and \
         may not all be deleted).\n"
    );

    // ---- Query 2: title + composer ------------------------------------
    let q2 = r#"cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#;
    println!("query 2: {q2}\n");
    let hits2 = db.query_direct(q2, None)?;
    for hit in &hits2 {
        println!("  {}", describe(&db, *hit));
    }
    println!(
        "\n  -> adding the composer constraint drops c2/c3 (no Rachmaninov \
         anywhere below them — the word is not deletable), ranks the \
         performer recording c4 at the composer->performer rename cost, \
         and keeps the MC/DVD variants behind the exact CD.\n"
    );

    // The schema-driven evaluation retrieves the same best three without
    // computing the full result set (Section 7).
    let top3 = db.query_schema(q2, 3)?;
    println!("best 3 via the schema:");
    for hit in &top3 {
        println!("  {}", describe(&db, *hit));
    }
    assert_eq!(&hits2[..3], &top3[..]);

    Ok(())
}
