//! Searching a generated collection: build a synthetic database (the
//! Section 8.1 workload at 1/100 scale), generate queries from the paper's
//! patterns, and compare the direct and schema-driven evaluations — a
//! single-cell, annotated version of what the `figure7` harness sweeps.
//!
//! ```sh
//! cargo run --release --example synthetic_search
//! ```

use approxql::crates::core::schema_eval::SchemaEvalConfig;
use approxql::crates::core::EvalOptions;
use approxql::crates::gen::{
    DataGenConfig, DataGenerator, QueryGenConfig, QueryGenerator, PATTERN_2,
};
use approxql::{CostModel, Database};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 10,000 elements, 100,000 Zipfian word occurrences, 100 names.
    let cfg = DataGenConfig::paper_scale_divided(100);
    println!(
        "generating: {} elements, {} word occurrences, {} names, {} terms…",
        cfg.element_count, cfg.word_occurrences, cfg.element_names, cfg.vocabulary
    );
    let tree = DataGenerator::new(cfg).generate_tree(&CostModel::new());
    let stats = tree.stats();
    println!(
        "data tree: {} nodes, depth {}, {} distinct labels",
        stats.node_count, stats.max_depth, stats.distinct_labels
    );

    let db = Database::from_tree(tree, CostModel::new());
    let sstats = db.schema().stats();
    println!(
        "schema: {} nodes ({}x smaller), max node class has {} instances\n",
        sstats.schema_nodes,
        stats.node_count / sstats.schema_nodes,
        sstats.max_instances
    );

    // Generate three queries from the paper's "small Boolean" pattern with
    // 5 renamings per label.
    let mut qgen = QueryGenerator::new(
        db.tree(),
        db.labels(),
        QueryGenConfig {
            renamings_per_label: 5,
            seed: 42,
            ..QueryGenConfig::default()
        },
    );

    for gq in qgen.generate_batch(PATTERN_2, 3) {
        println!("query: {}", gq.query);
        // NOTE: each generated query ships its own cost table; build a
        // database view with those costs by compiling directly.
        let db_q = Database::from_tree(db.tree().clone(), gq.costs.clone());

        let t = Instant::now();
        let (all, dstats) = db_q.query_direct_with(&gq.query, None, EvalOptions::default())?;
        let direct_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let (top10, sstats) = db_q.query_schema_with(
            &gq.query,
            10,
            EvalOptions::default(),
            SchemaEvalConfig::default(),
        )?;
        let schema_ms = t.elapsed().as_secs_f64() * 1e3;

        println!(
            "  direct: {} results in {direct_ms:.2} ms ({} list entries)",
            all.len(),
            dstats.list_entries
        );
        println!(
            "  schema: best {} in {schema_ms:.2} ms ({} second-level queries, k={})",
            top10.len(),
            sstats.second_level_queries,
            sstats.k_final
        );
        if let (Some(d), Some(s)) = (all.first(), top10.first()) {
            assert_eq!(d, s, "both algorithms must agree on the best result");
            println!("  best result: {} at cost {}", d.root, d.cost);
        }
        println!();
    }
    Ok(())
}
