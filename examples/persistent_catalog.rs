//! Persistence: build a database, save it to a single store file (the
//! Berkeley-DB-style substrate of `approxql-storage`), reopen it, query.
//!
//! ```sh
//! cargo run --example persistent_catalog
//! ```

use approxql::crates::gen::{DataGenConfig, DataGenerator};
use approxql::{CostModel, Database};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("approxql-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("catalog.axql");

    // Build a small synthetic collection and persist it.
    let cfg = DataGenConfig {
        element_count: 2_000,
        word_occurrences: 20_000,
        vocabulary: 5_000,
        ..DataGenConfig::default()
    };
    let tree = DataGenerator::new(cfg).generate_tree(&CostModel::new());
    let db = Database::from_tree(tree, CostModel::new());
    db.save(&path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "saved {} nodes + label indexes into {} ({:.1} KiB)",
        db.tree().len(),
        path.display(),
        bytes as f64 / 1024.0
    );

    // Reopen and verify a query agrees with the in-memory database.
    let reopened = Database::open(&path)?;
    let query = r#"name001[name004["term1"]]"#;
    let a = db.query_direct(query, Some(5))?;
    let b = reopened.query_direct(query, Some(5))?;
    assert_eq!(a, b, "reopened database must answer identically");
    println!(
        "query {query} -> {} hits (best cost {:?})",
        b.len(),
        b.first().map(|h| h.cost)
    );

    // Schema-driven answers survive the roundtrip too (the schema is
    // rebuilt from the tree on open).
    let c = reopened.query_schema(query, 5)?;
    assert_eq!(&b[..c.len()], &c[..]);
    println!("schema-driven evaluation agrees after reopen");

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
