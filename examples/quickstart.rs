//! Quickstart: load XML, pick transformation costs, run an approximate
//! query, inspect ranked results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use approxql::{Cost, CostModel, Database, NodeType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny catalog of sound storage media (the paper's running domain).
    let xml = r#"<catalog>
        <cd>
            <title>Piano Concerto No. 2</title>
            <composer>Rachmaninov</composer>
        </cd>
        <cd>
            <title>Preludes</title>
            <tracks>
                <track><title>Prelude in C sharp minor</title></track>
                <track><title>Piano concerto arrangement</title></track>
            </tracks>
        </cd>
        <mc>
            <title>Piano Concerto No. 3</title>
            <composer>Rachmaninov</composer>
        </mc>
    </catalog>"#;

    // Costs say *how* the query may be relaxed (Definition 6): renaming the
    // scope cd -> mc costs 4, deleting the word "concerto" costs 6, and
    // every implicit insertion (e.g. descending into tracks/track) costs 1.
    let costs = CostModel::builder()
        .insert_default(1)
        .rename(NodeType::Struct, "cd", "mc", Cost::finite(4))
        .delete(NodeType::Text, "concerto", Cost::finite(6))
        .build();

    let db = Database::from_xml_str(xml, costs)?;

    let query = r#"cd[title["piano" and "concerto"]]"#;
    println!("query: {query}\n");

    // Direct evaluation: computes *all* approximate results, ranks them.
    let hits = db.query_direct(query, Some(10))?;
    for (rank, hit) in hits.iter().enumerate() {
        let el = db.result_element(*hit)?;
        println!(
            "#{rank} cost={} -> <{}> titled {:?}",
            hit.cost,
            el.name,
            el.find_child("title")
                .map(|t| t.text_content())
                .unwrap_or_default()
        );
    }

    // The same best-3 via the schema-driven evaluation — identical answers,
    // different algorithm (Section 7 of the paper).
    let via_schema = db.query_schema(query, 3)?;
    assert_eq!(&hits[..via_schema.len()], &via_schema[..]);
    println!(
        "\nschema-driven evaluation returned the same top-{}",
        via_schema.len()
    );

    Ok(())
}
